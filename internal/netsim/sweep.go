package netsim

import (
	"fmt"
	"math/rand"
	"strings"
)

// newRand returns the deterministic generator used across the package.
func newRand(seed int64) *rand.Rand {
	if seed == 0 {
		seed = 1
	}
	return rand.New(rand.NewSource(seed))
}

// MB is one megabyte in bytes (the unit the paper's figures use).
const MB = 1 << 20

// FigureFileSizesMB are the four file sizes of Figures 5 and 6.
var FigureFileSizesMB = []int{1, 25, 50, 100}

// UntunedBufferBytes is the paper's default socket buffer ("typically 64 KB
// in the test environment").
const UntunedBufferBytes = 64 * 1024

// TunedBufferBytes is the paper's tuned socket buffer (Figure 6: "TCP
// buffers tuned to 1 MB").
const TunedBufferBytes = 1024 * 1024

// SweepPoint is one measurement in a stream sweep: a file size, a stream
// count, and the achieved aggregate rate.
type SweepPoint struct {
	FileMB  int
	Streams int
	Mbps    float64
}

// Sweep is a full figure: transfer rate as a function of parallel streams
// for each file size, at a fixed buffer size.
type Sweep struct {
	BufferBytes int
	MaxStreams  int
	Points      []SweepPoint
}

// StreamSweep reproduces one of the paper's figures: for each file size and
// each stream count from 1 to maxStreams, it simulates the transfer repeats
// times with distinct seeds and records the mean aggregate throughput.
func StreamSweep(cfg Config, fileSizesMB []int, maxStreams, bufferBytes, repeats int) (Sweep, error) {
	sw := Sweep{BufferBytes: bufferBytes, MaxStreams: maxStreams}
	for _, mb := range fileSizesMB {
		for s := 1; s <= maxStreams; s++ {
			mean, err := MeanThroughputMbps(cfg, Transfer{
				FileBytes:   int64(mb) * MB,
				Streams:     s,
				BufferBytes: bufferBytes,
			}, repeats)
			if err != nil {
				return Sweep{}, err
			}
			sw.Points = append(sw.Points, SweepPoint{FileMB: mb, Streams: s, Mbps: mean})
		}
	}
	return sw, nil
}

// Rate returns the sweep's throughput for the given file size and stream
// count, or zero if that point was not measured.
func (s Sweep) Rate(fileMB, streams int) float64 {
	for _, p := range s.Points {
		if p.FileMB == fileMB && p.Streams == streams {
			return p.Mbps
		}
	}
	return 0
}

// PeakRate returns the highest rate reached for the file size and the stream
// count at which it occurred.
func (s Sweep) PeakRate(fileMB int) (mbps float64, streams int) {
	for _, p := range s.Points {
		if p.FileMB == fileMB && p.Mbps > mbps {
			mbps, streams = p.Mbps, p.Streams
		}
	}
	return mbps, streams
}

// Table renders the sweep as the text analogue of the paper's figure: one
// row per stream count, one column per file size.
func (s Sweep) Table() string {
	var b strings.Builder
	sizes := uniqueSizes(s.Points)
	fmt.Fprintf(&b, "%-8s", "streams")
	for _, mb := range sizes {
		fmt.Fprintf(&b, "%10s", fmt.Sprintf("%dMB", mb))
	}
	b.WriteByte('\n')
	for st := 1; st <= s.MaxStreams; st++ {
		fmt.Fprintf(&b, "%-8d", st)
		for _, mb := range sizes {
			fmt.Fprintf(&b, "%10.2f", s.Rate(mb, st))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func uniqueSizes(pts []SweepPoint) []int {
	var sizes []int
	seen := make(map[int]bool)
	for _, p := range pts {
		if !seen[p.FileMB] {
			seen[p.FileMB] = true
			sizes = append(sizes, p.FileMB)
		}
	}
	return sizes
}

// Figure5 regenerates the paper's Figure 5: transfer rates for 1, 25, 50 and
// 100 MB files over 1..10 parallel streams with default (untuned) 64 KB
// buffers on the CERN-ANL path.
func Figure5(repeats int) (Sweep, error) {
	return StreamSweep(CERNtoANL(), FigureFileSizesMB, 10, UntunedBufferBytes, repeats)
}

// Figure6 regenerates the paper's Figure 6: the same sweep with buffers
// tuned to 1 MB.
func Figure6(repeats int) (Sweep, error) {
	return StreamSweep(CERNtoANL(), FigureFileSizesMB, 10, TunedBufferBytes, repeats)
}
