package netsim

import (
	"testing"
	"time"
)

func TestSimulateConcurrentValidation(t *testing.T) {
	cfg := CERNtoANL()
	if _, err := SimulateConcurrent(cfg, nil); err == nil {
		t.Error("empty scenario accepted")
	}
	bad := []ConcurrentTransfer{{
		Transfer: Transfer{FileBytes: 0, Streams: 1, BufferBytes: 65536},
	}}
	if _, err := SimulateConcurrent(cfg, bad); err == nil {
		t.Error("invalid transfer accepted")
	}
	neg := []ConcurrentTransfer{{
		Transfer: Transfer{FileBytes: MB, Streams: 1, BufferBytes: 65536},
		StartAt:  -time.Second,
	}}
	if _, err := SimulateConcurrent(cfg, neg); err == nil {
		t.Error("negative start accepted")
	}
}

func TestConcurrentSingleMatchesSimulate(t *testing.T) {
	cfg := CERNtoANL()
	tr := Transfer{FileBytes: 25 * MB, Streams: 3, BufferBytes: TunedBufferBytes}
	solo, err := Simulate(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := SimulateConcurrent(cfg, []ConcurrentTransfer{{Transfer: tr}})
	if err != nil {
		t.Fatal(err)
	}
	ratio := multi[0].ThroughputMbps / solo.ThroughputMbps
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("single concurrent transfer %.1f vs Simulate %.1f (ratio %.2f)",
			multi[0].ThroughputMbps, solo.ThroughputMbps, ratio)
	}
}

func TestConcurrentTransfersShareCapacity(t *testing.T) {
	cfg := CERNtoANL()
	tr := Transfer{FileBytes: 50 * MB, Streams: 3, BufferBytes: TunedBufferBytes}
	one, err := SimulateConcurrent(cfg, []ConcurrentTransfer{{Transfer: tr}})
	if err != nil {
		t.Fatal(err)
	}
	four := make([]ConcurrentTransfer, 4)
	for i := range four {
		four[i] = ConcurrentTransfer{Transfer: tr}
	}
	res, err := SimulateConcurrent(cfg, four)
	if err != nil {
		t.Fatal(err)
	}
	// Each of four contenders gets roughly a quarter of the link: their
	// completion must be much slower than the solo run.
	for i, r := range res {
		if r.Duration < 2*one[0].Duration {
			t.Fatalf("transfer %d finished in %v, solo took %v; no contention visible",
				i, r.Duration, one[0].Duration)
		}
	}
	// Aggregate goodput cannot exceed the link.
	var lastEnd time.Duration
	for _, r := range res {
		if r.Duration > lastEnd {
			lastEnd = r.Duration
		}
	}
	aggregate := float64(4*50*MB) * 8 / lastEnd.Seconds() / 1e6
	if aggregate > (cfg.LinkMbps-cfg.CrossTrafficMbps)*1.05 {
		t.Fatalf("aggregate %.1f Mbps exceeds available capacity", aggregate)
	}
	// Rough fairness: no contender more than ~2.5x faster than another.
	min, max := res[0].ThroughputMbps, res[0].ThroughputMbps
	for _, r := range res {
		if r.ThroughputMbps < min {
			min = r.ThroughputMbps
		}
		if r.ThroughputMbps > max {
			max = r.ThroughputMbps
		}
	}
	if max > 2.5*min {
		t.Fatalf("unfair sharing: %.1f .. %.1f Mbps", min, max)
	}
}

func TestStaggeredStartsRespected(t *testing.T) {
	cfg := CERNtoANL()
	cfg.LossRate = 0
	tr := Transfer{FileBytes: 5 * MB, Streams: 2, BufferBytes: TunedBufferBytes}
	res, err := SimulateConcurrent(cfg, []ConcurrentTransfer{
		{Transfer: tr},
		{Transfer: tr, StartAt: 30 * time.Second}, // long after the first ends
	})
	if err != nil {
		t.Fatal(err)
	}
	// With no overlap, both see the full link: durations comparable.
	ratio := res[1].Duration.Seconds() / res[0].Duration.Seconds()
	if ratio < 0.7 || ratio > 1.3 {
		t.Fatalf("staggered transfer %v vs first %v (ratio %.2f); overlap where none expected",
			res[1].Duration, res[0].Duration, ratio)
	}
}

func TestFanOutScaling(t *testing.T) {
	cfg := CERNtoANL()
	t1, err := FanOut(cfg, 25*MB, 3, TunedBufferBytes, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	t4, err := FanOut(cfg, 25*MB, 3, TunedBufferBytes, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	var worst time.Duration
	for _, r := range t4 {
		if r.Duration > worst {
			worst = r.Duration
		}
	}
	// Four subscribers over one uplink: the slowest should take roughly
	// four times the solo duration (within loose tolerance).
	ratio := worst.Seconds() / t1[0].Duration.Seconds()
	if ratio < 2.5 || ratio > 6 {
		t.Fatalf("4-way fan-out slowest/solo = %.2f, expected ~4", ratio)
	}
}
