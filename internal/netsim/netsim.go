// Package netsim provides a deterministic, discrete-event model of TCP bulk
// transfers over a shared wide-area bottleneck link.
//
// The paper's evaluation (Section 6, Figures 5 and 6) measures GridFTP
// transfer rates between CERN and ANL over a 45 Mbps link with a 125 ms
// round-trip time, varying the number of parallel TCP streams and the socket
// buffer size. That testbed is not available here, so netsim reproduces the
// mechanism the experiment exercises from first principles:
//
//   - TCP Reno window dynamics: slow start, congestion avoidance, and
//     multiplicative decrease on loss;
//   - the socket-buffer clamp: the send window can never exceed the
//     configured buffer, so an untuned 64 KB buffer caps a single stream at
//     buffer/RTT regardless of available bandwidth;
//   - a shared drop-tail bottleneck queue: when the aggregate offered window
//     exceeds the bandwidth-delay product plus queue capacity, flows lose
//     segments and halve their windows;
//   - ambient random segment loss, as seen on production research links of
//     the era;
//   - per-transfer connection setup cost (control-channel round trips and
//     authentication), which penalizes small files.
//
// The model advances in rounds of one effective RTT, a standard fluid
// approximation for bulk TCP. All randomness is drawn from a seeded
// generator, so results are reproducible.
package netsim

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Config describes a wide-area path between two Grid sites.
type Config struct {
	// LinkMbps is the raw capacity of the bottleneck link in megabits per
	// second (the paper's CERN-ANL link is 45 Mbps).
	LinkMbps float64

	// CrossTrafficMbps is constant background load from other users of the
	// production link. It reduces the capacity available to the modeled
	// flows. The paper's peak measured rate of ~23 Mbps on a 45 Mbps link
	// implies roughly 20 Mbps of ambient load.
	CrossTrafficMbps float64

	// RTT is the base round-trip time excluding queueing delay.
	RTT time.Duration

	// QueueBytes is the drop-tail queue capacity at the bottleneck router.
	// Era-typical routers had shallow buffers relative to the BDP.
	QueueBytes int

	// MSS is the TCP maximum segment size in bytes.
	MSS int

	// LossRate is the ambient probability that any given segment is lost
	// independently of congestion (link errors, unmodeled cross bursts).
	LossRate float64

	// SetupRTTs is the number of round trips charged before data flows on
	// each stream: TCP handshake, control-channel commands, and the
	// security handshake (Section 4.1: every request is authenticated).
	SetupRTTs int

	// Seed makes the simulation reproducible. Zero selects a fixed default.
	Seed int64
}

// CERNtoANL returns the configuration of the paper's testbed: a 45 Mbps
// production link between CERN and Argonne with a 125 ms round-trip time.
// Cross traffic and loss are set so that the peak aggregate rate matches the
// ~23 Mbps the paper reports.
func CERNtoANL() Config {
	return Config{
		LinkMbps:         45,
		CrossTrafficMbps: 20,
		RTT:              125 * time.Millisecond,
		QueueBytes:       160 * 1024,
		MSS:              1460,
		LossRate:         5e-5,
		SetupRTTs:        3,
		Seed:             1,
	}
}

// validate normalizes zero-valued fields to sane defaults.
func (c *Config) validate() error {
	if c.LinkMbps <= 0 {
		return fmt.Errorf("netsim: LinkMbps must be positive, got %v", c.LinkMbps)
	}
	if c.CrossTrafficMbps < 0 || c.CrossTrafficMbps >= c.LinkMbps {
		return fmt.Errorf("netsim: CrossTrafficMbps %v must be in [0, LinkMbps)", c.CrossTrafficMbps)
	}
	if c.RTT <= 0 {
		return fmt.Errorf("netsim: RTT must be positive, got %v", c.RTT)
	}
	if c.MSS <= 0 {
		c.MSS = 1460
	}
	if c.QueueBytes < 0 {
		return fmt.Errorf("netsim: QueueBytes must be non-negative, got %d", c.QueueBytes)
	}
	if c.LossRate < 0 || c.LossRate >= 1 {
		return fmt.Errorf("netsim: LossRate %v must be in [0,1)", c.LossRate)
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return nil
}

// availBytesPerSec is the capacity left for modeled flows after cross traffic.
func (c Config) availBytesPerSec() float64 {
	return (c.LinkMbps - c.CrossTrafficMbps) * 1e6 / 8
}

// Transfer describes one bulk file transfer using a number of parallel TCP
// streams, as GridFTP's extended block mode does. The file is divided evenly
// across the streams.
type Transfer struct {
	// FileBytes is the total size of the file to move.
	FileBytes int64

	// Streams is the number of parallel TCP connections (GridFTP
	// "parallelism"). Must be at least 1.
	Streams int

	// BufferBytes is the socket send/receive buffer on each stream. The
	// paper's untuned default is 64 KB; the tuned value is 1 MB.
	BufferBytes int
}

func (t Transfer) validate() error {
	if t.FileBytes <= 0 {
		return fmt.Errorf("netsim: FileBytes must be positive, got %d", t.FileBytes)
	}
	if t.Streams < 1 {
		return fmt.Errorf("netsim: Streams must be >= 1, got %d", t.Streams)
	}
	if t.BufferBytes < 1024 {
		return fmt.Errorf("netsim: BufferBytes must be >= 1024, got %d", t.BufferBytes)
	}
	return nil
}

// Result reports the outcome of a simulated transfer.
type Result struct {
	// Duration is the wall-clock time from the first SYN to the last byte
	// delivered, including connection setup.
	Duration time.Duration

	// ThroughputMbps is FileBytes expressed over Duration in megabits/s.
	ThroughputMbps float64

	// PerStreamMbps is each stream's goodput over its own active period.
	PerStreamMbps []float64

	// Rounds is the number of RTT rounds simulated.
	Rounds int

	// CongestionLosses counts loss events caused by bottleneck overflow.
	CongestionLosses int

	// RandomLosses counts loss events from the ambient loss process.
	RandomLosses int
}

// flow is the per-stream TCP state.
type flow struct {
	cwnd      float64 // congestion window, bytes
	ssthresh  float64 // slow-start threshold, bytes
	clamp     float64 // socket-buffer window clamp, bytes
	remaining float64 // bytes left to deliver
	total     float64 // bytes assigned to this stream
	start     float64 // seconds at which the stream began sending data
	end       float64 // seconds at which the stream finished
	done      bool
	sent      float64 // bytes offered this round (scratch)
}

// Simulate runs one transfer over the configured path and returns the result.
func Simulate(cfg Config, tr Transfer) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	if err := tr.validate(); err != nil {
		return Result{}, err
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	rtt := cfg.RTT.Seconds()
	capacity := cfg.availBytesPerSec()
	mss := float64(cfg.MSS)

	per := float64(tr.FileBytes) / float64(tr.Streams)
	setup := float64(cfg.SetupRTTs) * rtt
	flows := make([]*flow, tr.Streams)
	for i := range flows {
		flows[i] = &flow{
			cwnd:      2 * mss,
			ssthresh:  float64(tr.BufferBytes),
			clamp:     float64(tr.BufferBytes),
			remaining: per,
			total:     per,
			start:     setup,
		}
	}

	res := Result{PerStreamMbps: make([]float64, tr.Streams)}
	queue := 0.0
	now := setup
	const maxRounds = 4_000_000

	for round := 0; ; round++ {
		if round >= maxRounds {
			return Result{}, fmt.Errorf("netsim: transfer did not converge in %d rounds", maxRounds)
		}
		res.Rounds = round
		active := 0
		offered := 0.0
		for _, f := range flows {
			if f.done {
				continue
			}
			active++
			f.sent = math.Min(math.Min(f.cwnd, f.clamp), f.remaining)
			offered += f.sent
		}
		if active == 0 {
			break
		}

		// Effective RTT includes queueing delay at the bottleneck.
		effRTT := rtt + queue/capacity
		drained := capacity * effRTT

		// How much of the offered load fits through the link plus the
		// remaining queue headroom this round.
		room := drained + (float64(cfg.QueueBytes) - queue)
		accept := 1.0
		overflow := 0.0
		if offered > room {
			accept = room / offered
			overflow = offered - room
		}
		queue = math.Max(0, queue+offered*accept-drained)
		if queue > float64(cfg.QueueBytes) {
			queue = float64(cfg.QueueBytes)
		}

		// Congestion-loss probability per flow this round. With drop-tail
		// queues, flows transmitting during an overflow episode are likely
		// (but not certain) to lose a segment; the factor spreads halving
		// across rounds instead of synchronizing every flow at once.
		congProb := 0.0
		if overflow > 0 {
			congProb = math.Min(1, 3*overflow/offered)
		}

		for _, f := range flows {
			if f.done {
				continue
			}
			delivered := f.sent * accept
			f.remaining -= delivered
			if f.remaining <= 1e-6 {
				f.done = true
				// Interpolate the fraction of the round actually needed.
				frac := 1.0
				if delivered > 0 {
					frac = math.Max(0, math.Min(1, (delivered+f.remaining)/delivered))
				}
				f.end = now + effRTT*frac
			}

			segs := delivered / mss
			lost := false
			if congProb > 0 && f.sent > 0 && rng.Float64() < congProb {
				lost = true
				res.CongestionLosses++
			} else if cfg.LossRate > 0 && segs > 0 {
				if rng.Float64() < 1-math.Pow(1-cfg.LossRate, segs) {
					lost = true
					res.RandomLosses++
				}
			}

			if f.done {
				continue
			}
			if lost {
				f.ssthresh = math.Max(f.cwnd/2, 2*mss)
				f.cwnd = f.ssthresh
			} else if f.cwnd < f.ssthresh {
				f.cwnd = math.Min(f.cwnd*2, f.clamp) // slow start
			} else {
				f.cwnd = math.Min(f.cwnd+mss, f.clamp) // congestion avoidance
			}
		}
		now += effRTT
	}

	last := 0.0
	for i, f := range flows {
		if f.end > last {
			last = f.end
		}
		span := f.end - f.start
		if span > 0 {
			res.PerStreamMbps[i] = f.total * 8 / span / 1e6
		}
	}
	res.Duration = time.Duration(last * float64(time.Second))
	if last > 0 {
		res.ThroughputMbps = float64(tr.FileBytes) * 8 / last / 1e6
	}
	return res, nil
}

// MeanThroughputMbps runs the same transfer with n different seeds and
// returns the mean aggregate throughput. The paper's measurements average
// several runs; this smooths the loss process the same way.
func MeanThroughputMbps(cfg Config, tr Transfer, n int) (float64, error) {
	if n < 1 {
		n = 1
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		c := cfg
		c.Seed = cfg.Seed + int64(i)*7919
		r, err := Simulate(c, tr)
		if err != nil {
			return 0, err
		}
		sum += r.ThroughputMbps
	}
	return sum / float64(n), nil
}

// OptimalBufferBytes computes the classic tuning formula the paper quotes
// from [Tier00]: optimal TCP buffer = RTT x speed of the bottleneck link.
func OptimalBufferBytes(cfg Config) int {
	return int(cfg.availBytesPerSec() * cfg.RTT.Seconds())
}
