package netsim

import (
	"fmt"
	"math"
	"time"
)

// ConcurrentTransfer is one transfer in a shared-link scenario: a GDMP
// fan-out, for instance, has every subscriber pulling from the producer at
// once, all contending for the producer's WAN uplink.
type ConcurrentTransfer struct {
	Transfer

	// StartAt delays the transfer's first byte relative to the scenario
	// start (e.g. notification staggering).
	StartAt time.Duration
}

// ConcurrentResult reports one transfer of a shared-link scenario.
type ConcurrentResult struct {
	// Duration is from the transfer's own start (including setup) to its
	// last byte.
	Duration time.Duration

	// ThroughputMbps is the transfer's goodput over its own duration.
	ThroughputMbps float64
}

// SimulateConcurrent runs several transfers over one shared bottleneck,
// with per-transfer start offsets. All streams of all transfers contend
// for the same link, so this models both intra-transfer parallelism and
// inter-transfer interference.
func SimulateConcurrent(cfg Config, transfers []ConcurrentTransfer) ([]ConcurrentResult, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if len(transfers) == 0 {
		return nil, fmt.Errorf("netsim: no transfers")
	}
	for i, tr := range transfers {
		if err := tr.validate(); err != nil {
			return nil, fmt.Errorf("netsim: transfer %d: %w", i, err)
		}
		if tr.StartAt < 0 {
			return nil, fmt.Errorf("netsim: transfer %d: negative StartAt", i)
		}
	}

	rng := newRand(cfg.Seed)
	rtt := cfg.RTT.Seconds()
	capacity := cfg.availBytesPerSec()
	mss := float64(cfg.MSS)
	setup := float64(cfg.SetupRTTs) * rtt

	type cflow struct {
		flow
		transfer int
	}
	var flows []*cflow
	tStart := make([]float64, len(transfers))
	tEnd := make([]float64, len(transfers))
	for ti, tr := range transfers {
		begin := tr.StartAt.Seconds()
		tStart[ti] = begin
		per := float64(tr.FileBytes) / float64(tr.Streams)
		for s := 0; s < tr.Streams; s++ {
			flows = append(flows, &cflow{
				flow: flow{
					cwnd:      2 * mss,
					ssthresh:  float64(tr.BufferBytes),
					clamp:     float64(tr.BufferBytes),
					remaining: per,
					total:     per,
					start:     begin + setup,
				},
				transfer: ti,
			})
		}
	}

	queue := 0.0
	now := 0.0
	const maxRounds = 4_000_000
	for round := 0; ; round++ {
		if round >= maxRounds {
			return nil, fmt.Errorf("netsim: concurrent scenario did not converge in %d rounds", maxRounds)
		}
		active := 0
		pendingFuture := false
		offered := 0.0
		for _, f := range flows {
			if f.done {
				continue
			}
			if now < f.start {
				pendingFuture = true
				continue
			}
			active++
			f.sent = math.Min(math.Min(f.cwnd, f.clamp), f.remaining)
			offered += f.sent
		}
		if active == 0 {
			if !pendingFuture {
				break
			}
			// Jump to the next flow activation.
			next := math.Inf(1)
			for _, f := range flows {
				if !f.done && f.start > now && f.start < next {
					next = f.start
				}
			}
			now = next
			continue
		}

		effRTT := rtt + queue/capacity
		drained := capacity * effRTT
		room := drained + (float64(cfg.QueueBytes) - queue)
		accept := 1.0
		overflow := 0.0
		if offered > room {
			accept = room / offered
			overflow = offered - room
		}
		queue = math.Max(0, queue+offered*accept-drained)
		if queue > float64(cfg.QueueBytes) {
			queue = float64(cfg.QueueBytes)
		}
		congProb := 0.0
		if overflow > 0 {
			congProb = math.Min(1, 3*overflow/offered)
		}

		for _, f := range flows {
			if f.done || now < f.start {
				continue
			}
			delivered := f.sent * accept
			f.remaining -= delivered
			if f.remaining <= 1e-6 {
				f.done = true
				frac := 1.0
				if delivered > 0 {
					frac = math.Max(0, math.Min(1, (delivered+f.remaining)/delivered))
				}
				f.end = now + effRTT*frac
				if f.end > tEnd[f.transfer] {
					tEnd[f.transfer] = f.end
				}
			}
			segs := delivered / mss
			lost := false
			if congProb > 0 && f.sent > 0 && rng.Float64() < congProb {
				lost = true
			} else if cfg.LossRate > 0 && segs > 0 && rng.Float64() < 1-math.Pow(1-cfg.LossRate, segs) {
				lost = true
			}
			if f.done {
				continue
			}
			if lost {
				f.ssthresh = math.Max(f.cwnd/2, 2*mss)
				f.cwnd = f.ssthresh
			} else if f.cwnd < f.ssthresh {
				f.cwnd = math.Min(f.cwnd*2, f.clamp)
			} else {
				f.cwnd = math.Min(f.cwnd+mss, f.clamp)
			}
		}
		now += effRTT
	}

	results := make([]ConcurrentResult, len(transfers))
	for ti, tr := range transfers {
		span := tEnd[ti] - tStart[ti]
		results[ti].Duration = time.Duration(span * float64(time.Second))
		if span > 0 {
			results[ti].ThroughputMbps = float64(tr.FileBytes) * 8 / span / 1e6
		}
	}
	return results, nil
}

// FanOut models a producer publishing one file to n subscribers that all
// pull concurrently over the producer's shared uplink, returning each
// subscriber's completion time.
func FanOut(cfg Config, fileBytes int64, streams, buffer, subscribers int, stagger time.Duration) ([]ConcurrentResult, error) {
	transfers := make([]ConcurrentTransfer, subscribers)
	for i := range transfers {
		transfers[i] = ConcurrentTransfer{
			Transfer: Transfer{FileBytes: fileBytes, Streams: streams, BufferBytes: buffer},
			StartAt:  time.Duration(i) * stagger,
		}
	}
	return SimulateConcurrent(cfg, transfers)
}
