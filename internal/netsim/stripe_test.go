package netsim

import (
	"math"
	"strings"
	"testing"
)

func runStriped(t *testing.T, cfg Config, tr StripedTransfer) StripedResult {
	t.Helper()
	r, err := SimulateStriped(cfg, tr)
	if err != nil {
		t.Fatalf("SimulateStriped(%+v): %v", tr, err)
	}
	return r
}

func TestHostProfileCaps(t *testing.T) {
	h := HostProfile{NICMbps: 100, DiskMBps: 30, CPUPerByteNs: 5}
	// NIC: 12.5 MB/s; disk: 30 MB/s; CPU: 200 MB/s -> NIC binds.
	if got, want := h.CapBytesPerSec(), 100e6/8; got != want {
		t.Fatalf("cap = %v, want %v (NIC bound)", got, want)
	}
	h = HostProfile{NICMbps: 1000, DiskMBps: 10, CPUPerByteNs: 5}
	if got, want := h.CapBytesPerSec(), 10e6*1.0; got != want {
		t.Fatalf("cap = %v, want %v (disk bound)", got, want)
	}
	h = HostProfile{NICMbps: 1000, DiskMBps: 500, CPUPerByteNs: 100}
	if got, want := h.CapBytesPerSec(), 1e9/100; got != want {
		t.Fatalf("cap = %v, want %v (CPU bound)", got, want)
	}
	h = HostProfile{}
	if !math.IsInf(h.CapBytesPerSec(), 1) {
		t.Fatalf("empty profile should be unconstrained")
	}
}

func TestStripedValidation(t *testing.T) {
	cfg := CERNtoANL()
	bad := []StripedTransfer{
		{FileBytes: 0, SourceHosts: 1, DestHosts: 1, StreamsPerPair: 1, BufferBytes: 65536},
		{FileBytes: MB, SourceHosts: 0, DestHosts: 1, StreamsPerPair: 1, BufferBytes: 65536},
		{FileBytes: MB, SourceHosts: 1, DestHosts: 0, StreamsPerPair: 1, BufferBytes: 65536},
		{FileBytes: MB, SourceHosts: 1, DestHosts: 1, StreamsPerPair: 0, BufferBytes: 65536},
		{FileBytes: MB, SourceHosts: 1, DestHosts: 1, StreamsPerPair: 1, BufferBytes: 100},
	}
	for _, tr := range bad {
		if _, err := SimulateStriped(cfg, tr); err == nil {
			t.Errorf("expected error for %+v", tr)
		}
	}
}

func TestStripedPairsMinOfSides(t *testing.T) {
	tr := StripedTransfer{SourceHosts: 4, DestHosts: 2}
	if tr.Pairs() != 2 {
		t.Fatalf("Pairs = %d, want 2", tr.Pairs())
	}
	tr = StripedTransfer{SourceHosts: 1, DestHosts: 3}
	if tr.Pairs() != 1 {
		t.Fatalf("Pairs = %d, want 1", tr.Pairs())
	}
}

// TestStripedMatchesParallelForOnePair: a 1x1 striped transfer with s
// streams behaves like a plain parallel transfer with s streams, when host
// resources are not the bottleneck.
func TestStripedMatchesParallelForOnePair(t *testing.T) {
	cfg := CERNtoANL()
	plain := run(t, cfg, Transfer{FileBytes: 50 * MB, Streams: 4, BufferBytes: TunedBufferBytes})
	striped := runStriped(t, cfg, StripedTransfer{
		FileBytes: 50 * MB, SourceHosts: 1, DestHosts: 1, StreamsPerPair: 4,
		BufferBytes: TunedBufferBytes, Source: DefaultHost(), Dest: DefaultHost(),
	})
	ratio := striped.ThroughputMbps / plain.ThroughputMbps
	if ratio < 0.85 || ratio > 1.15 {
		t.Fatalf("1x1 striped %.1f vs plain %.1f (ratio %.2f) should match",
			striped.ThroughputMbps, plain.ThroughputMbps, ratio)
	}
}

// TestStripingOvercomesHostLimit: when a single host NIC is slower than the
// WAN, striping across several hosts recovers the WAN rate. This is the
// architectural point of GridFTP striped transfer (Section 3.2).
func TestStripingOvercomesHostLimit(t *testing.T) {
	cfg := CERNtoANL()
	slow := HostProfile{NICMbps: 10} // one host can do at most 10 Mbps
	one := runStriped(t, cfg, StripedTransfer{
		FileBytes: 50 * MB, SourceHosts: 1, DestHosts: 1, StreamsPerPair: 4,
		BufferBytes: TunedBufferBytes, Source: slow, Dest: slow,
	})
	three := runStriped(t, cfg, StripedTransfer{
		FileBytes: 50 * MB, SourceHosts: 3, DestHosts: 3, StreamsPerPair: 4,
		BufferBytes: TunedBufferBytes, Source: slow, Dest: slow,
	})
	if one.ThroughputMbps > 11 {
		t.Fatalf("single 10 Mbps host moved %.1f Mbps, exceeding its NIC", one.ThroughputMbps)
	}
	if three.ThroughputMbps < 1.8*one.ThroughputMbps {
		t.Fatalf("3-way striping %.1f should far exceed single host %.1f",
			three.ThroughputMbps, one.ThroughputMbps)
	}
}

// TestObjectCopierOverheadVisible models Section 5.3: a server running the
// object copier burns more CPU per network byte; with a high-end (here:
// WAN-saturating) link the degradation becomes noticeable.
func TestObjectCopierOverheadVisible(t *testing.T) {
	cfg := CERNtoANL()
	cfg.CrossTrafficMbps = 0 // give the flows the full 45 Mbps
	fileServer := HostProfile{NICMbps: 100, DiskMBps: 30, CPUPerByteNs: 5}
	objServer := HostProfile{NICMbps: 100, DiskMBps: 30, CPUPerByteNs: 300} // copier load
	plain := runStriped(t, cfg, StripedTransfer{
		FileBytes: 50 * MB, SourceHosts: 1, DestHosts: 1, StreamsPerPair: 4,
		BufferBytes: TunedBufferBytes, Source: fileServer, Dest: fileServer,
	})
	obj := runStriped(t, cfg, StripedTransfer{
		FileBytes: 50 * MB, SourceHosts: 1, DestHosts: 1, StreamsPerPair: 4,
		BufferBytes: TunedBufferBytes, Source: objServer, Dest: fileServer,
	})
	if obj.ThroughputMbps >= plain.ThroughputMbps {
		t.Fatalf("object server %.1f should be slower than file server %.1f",
			obj.ThroughputMbps, plain.ThroughputMbps)
	}
	// 300 ns/byte caps the host at ~26.7 Mbps; the WAN offers 45.
	if obj.ThroughputMbps > 30 {
		t.Fatalf("object server %.1f exceeds its CPU cap", obj.ThroughputMbps)
	}
}

func TestStripedDeterminism(t *testing.T) {
	cfg := CERNtoANL()
	tr := StripedTransfer{
		FileBytes: 25 * MB, SourceHosts: 2, DestHosts: 2, StreamsPerPair: 2,
		BufferBytes: UntunedBufferBytes, Source: DefaultHost(), Dest: DefaultHost(),
	}
	a := runStriped(t, cfg, tr)
	b := runStriped(t, cfg, tr)
	if a.ThroughputMbps != b.ThroughputMbps {
		t.Fatalf("striped simulation not deterministic: %v vs %v", a.ThroughputMbps, b.ThroughputMbps)
	}
	if len(a.PerPairMbps) != 2 {
		t.Fatalf("expected 2 pair rates, got %d", len(a.PerPairMbps))
	}
}

func TestSweepTableAndAccessors(t *testing.T) {
	cfg := CERNtoANL()
	sw, err := StreamSweep(cfg, []int{1, 25}, 3, UntunedBufferBytes, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Points) != 6 {
		t.Fatalf("expected 6 points, got %d", len(sw.Points))
	}
	if sw.Rate(25, 2) <= 0 {
		t.Fatalf("Rate(25,2) should be positive")
	}
	if sw.Rate(99, 1) != 0 {
		t.Fatalf("Rate for unmeasured size should be 0")
	}
	peak, at := sw.PeakRate(25)
	if peak <= 0 || at < 1 || at > 3 {
		t.Fatalf("PeakRate(25) = %v @ %d streams, implausible", peak, at)
	}
	table := sw.Table()
	if table == "" {
		t.Fatal("empty table")
	}
	for _, want := range []string{"streams", "1MB", "25MB"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}
