package netsim

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func run(t *testing.T, cfg Config, tr Transfer) Result {
	t.Helper()
	r, err := Simulate(cfg, tr)
	if err != nil {
		t.Fatalf("Simulate(%+v): %v", tr, err)
	}
	return r
}

func mean(t *testing.T, tr Transfer) float64 {
	t.Helper()
	m, err := MeanThroughputMbps(CERNtoANL(), tr, 8)
	if err != nil {
		t.Fatalf("MeanThroughputMbps: %v", err)
	}
	return m
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"zero link", func(c *Config) { c.LinkMbps = 0 }},
		{"negative link", func(c *Config) { c.LinkMbps = -1 }},
		{"cross >= link", func(c *Config) { c.CrossTrafficMbps = c.LinkMbps }},
		{"negative cross", func(c *Config) { c.CrossTrafficMbps = -1 }},
		{"zero rtt", func(c *Config) { c.RTT = 0 }},
		{"negative queue", func(c *Config) { c.QueueBytes = -1 }},
		{"loss rate 1", func(c *Config) { c.LossRate = 1 }},
		{"negative loss", func(c *Config) { c.LossRate = -0.1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := CERNtoANL()
			tc.mut(&cfg)
			if _, err := Simulate(cfg, Transfer{FileBytes: MB, Streams: 1, BufferBytes: 65536}); err == nil {
				t.Errorf("expected validation error for %s", tc.name)
			}
		})
	}
}

func TestTransferValidation(t *testing.T) {
	cfg := CERNtoANL()
	bad := []Transfer{
		{FileBytes: 0, Streams: 1, BufferBytes: 65536},
		{FileBytes: -5, Streams: 1, BufferBytes: 65536},
		{FileBytes: MB, Streams: 0, BufferBytes: 65536},
		{FileBytes: MB, Streams: 1, BufferBytes: 512},
	}
	for _, tr := range bad {
		if _, err := Simulate(cfg, tr); err == nil {
			t.Errorf("expected error for transfer %+v", tr)
		}
	}
}

func TestDeterminism(t *testing.T) {
	cfg := CERNtoANL()
	tr := Transfer{FileBytes: 25 * MB, Streams: 4, BufferBytes: UntunedBufferBytes}
	a := run(t, cfg, tr)
	b := run(t, cfg, tr)
	if a.ThroughputMbps != b.ThroughputMbps || a.Duration != b.Duration {
		t.Fatalf("same seed produced different results: %+v vs %+v", a, b)
	}
	cfg.Seed = 99
	c := run(t, cfg, tr)
	if c.Rounds == a.Rounds && c.ThroughputMbps == a.ThroughputMbps && a.RandomLosses+a.CongestionLosses > 0 {
		t.Logf("different seed gave identical result; acceptable but suspicious")
	}
}

// TestUntunedWindowClamp verifies the core tuning fact: with a 64 KB buffer
// on a 125 ms path, a single stream cannot exceed buffer/RTT = 4.2 Mbps.
func TestUntunedWindowClamp(t *testing.T) {
	cfg := CERNtoANL()
	cfg.LossRate = 0 // isolate the clamp
	r := run(t, cfg, Transfer{FileBytes: 100 * MB, Streams: 1, BufferBytes: UntunedBufferBytes})
	clampMbps := float64(UntunedBufferBytes) * 8 / cfg.RTT.Seconds() / 1e6
	if r.ThroughputMbps > clampMbps {
		t.Fatalf("single untuned stream %.2f Mbps exceeds window clamp %.2f Mbps", r.ThroughputMbps, clampMbps)
	}
	if r.ThroughputMbps < 0.85*clampMbps {
		t.Fatalf("single untuned stream %.2f Mbps too far below clamp %.2f Mbps (lossless path)", r.ThroughputMbps, clampMbps)
	}
}

// TestAggregateNeverExceedsLink checks conservation: no configuration can
// deliver more than the available link capacity (steady state, long file).
func TestAggregateNeverExceedsLink(t *testing.T) {
	cfg := CERNtoANL()
	avail := (cfg.LinkMbps - cfg.CrossTrafficMbps)
	for _, streams := range []int{1, 4, 10, 16} {
		for _, buf := range []int{UntunedBufferBytes, TunedBufferBytes} {
			r := run(t, cfg, Transfer{FileBytes: 200 * MB, Streams: streams, BufferBytes: buf})
			// Small tolerance: queue drain at the end can nudge above.
			if r.ThroughputMbps > avail*1.05 {
				t.Errorf("streams=%d buf=%d: %.2f Mbps exceeds available %.1f Mbps",
					streams, buf, r.ThroughputMbps, avail)
			}
		}
	}
}

// TestFigure5Shape asserts the qualitative content of Figure 5: with default
// 64 KB buffers the large-file curves rise almost linearly with stream count
// and peak around 23 Mbps near 9 streams, while the 1 MB file stays low.
func TestFigure5Shape(t *testing.T) {
	big1 := mean(t, Transfer{FileBytes: 100 * MB, Streams: 1, BufferBytes: UntunedBufferBytes})
	big3 := mean(t, Transfer{FileBytes: 100 * MB, Streams: 3, BufferBytes: UntunedBufferBytes})
	big5 := mean(t, Transfer{FileBytes: 100 * MB, Streams: 5, BufferBytes: UntunedBufferBytes})
	big9 := mean(t, Transfer{FileBytes: 100 * MB, Streams: 9, BufferBytes: UntunedBufferBytes})
	small9 := mean(t, Transfer{FileBytes: 1 * MB, Streams: 9, BufferBytes: UntunedBufferBytes})

	if !(big1 < big3 && big3 < big5 && big5 < big9) {
		t.Errorf("untuned large-file curve not rising: 1->%.1f 3->%.1f 5->%.1f 9->%.1f", big1, big3, big5, big9)
	}
	// Near-linear early growth: 3 streams should give roughly 3x one stream.
	if big3 < 2.2*big1 || big3 > 3.5*big1 {
		t.Errorf("untuned growth not near-linear: 1 stream %.1f, 3 streams %.1f", big1, big3)
	}
	// Peak region around 20-25 Mbps as in the paper (~23 Mbps at 9 streams).
	if big9 < 18 || big9 > 26 {
		t.Errorf("untuned 9-stream rate %.1f Mbps outside the paper's peak region (~23)", big9)
	}
	// The 1 MB curve stays far below the large-file curve at high parallelism.
	if small9 > 0.6*big9 {
		t.Errorf("1 MB file at 9 streams (%.1f) should stay well below 100 MB (%.1f)", small9, big9)
	}
}

// TestFigure6Shape asserts Figure 6: with 1 MB buffers, results are similar
// to the untuned peak, "except that peak performance is achieved with just
// 3 streams".
func TestFigure6Shape(t *testing.T) {
	t1 := mean(t, Transfer{FileBytes: 100 * MB, Streams: 1, BufferBytes: TunedBufferBytes})
	t3 := mean(t, Transfer{FileBytes: 100 * MB, Streams: 3, BufferBytes: TunedBufferBytes})
	peak := t3
	for _, s := range []int{2, 4, 5, 6, 7, 8, 9, 10} {
		if v := mean(t, Transfer{FileBytes: 100 * MB, Streams: s, BufferBytes: TunedBufferBytes}); v > peak {
			peak = v
		}
	}
	if t3 < 0.85*peak {
		t.Errorf("tuned 3-stream rate %.1f should be within 15%% of peak %.1f", t3, peak)
	}
	if t1 >= t3 {
		t.Errorf("tuned single stream %.1f should be below 3 streams %.1f", t1, t3)
	}
	if peak < 18 || peak > 26 {
		t.Errorf("tuned peak %.1f Mbps outside the paper's ~23 Mbps region", peak)
	}
}

// TestPaperConclusions checks the four conclusions of Section 6 as ratios.
func TestPaperConclusions(t *testing.T) {
	untuned1 := mean(t, Transfer{FileBytes: 100 * MB, Streams: 1, BufferBytes: UntunedBufferBytes})
	untuned10 := mean(t, Transfer{FileBytes: 100 * MB, Streams: 10, BufferBytes: UntunedBufferBytes})
	tuned1 := mean(t, Transfer{FileBytes: 100 * MB, Streams: 1, BufferBytes: TunedBufferBytes})
	tuned2 := mean(t, Transfer{FileBytes: 100 * MB, Streams: 2, BufferBytes: TunedBufferBytes})
	tuned3 := mean(t, Transfer{FileBytes: 100 * MB, Streams: 3, BufferBytes: TunedBufferBytes})

	// C1: proper buffer setting is the single most important factor.
	if tuned1 < 3*untuned1 {
		t.Errorf("C1: tuned single stream %.1f should be several times untuned %.1f", tuned1, untuned1)
	}
	// C2: 10 untuned streams ~ 2-3 tuned streams.
	lo, hi := math.Min(tuned2, tuned3), math.Max(tuned2, tuned3)
	if untuned10 < 0.7*lo || untuned10 > 1.3*hi {
		t.Errorf("C2: 10 untuned streams %.1f not comparable to 2-3 tuned streams [%.1f, %.1f]", untuned10, lo, hi)
	}
	// C3: 2-3 tuned streams gain roughly 25%% over a single tuned stream.
	gain := math.Max(tuned2, tuned3) / tuned1
	if gain < 1.10 || gain > 1.60 {
		t.Errorf("C3: parallel tuned gain %.2fx outside [1.10, 1.60] (~1.25 expected)", gain)
	}
	// C4: untuned with enough streams matches the tuned peak.
	if untuned10 < 0.8*tuned3 {
		t.Errorf("C4: 10 untuned streams %.1f should approach tuned rate %.1f", untuned10, tuned3)
	}
}

func TestOptimalBufferFormula(t *testing.T) {
	cfg := CERNtoANL()
	got := OptimalBufferBytes(cfg)
	want := int((cfg.LinkMbps - cfg.CrossTrafficMbps) * 1e6 / 8 * cfg.RTT.Seconds())
	if got != want {
		t.Fatalf("OptimalBufferBytes = %d, want %d", got, want)
	}
	// Sanity: for the paper's path this is a few hundred KB, i.e. the 1 MB
	// tuned value is comfortably sufficient and 64 KB is far too small.
	if got < 128*1024 || got > 2*1024*1024 {
		t.Fatalf("optimal buffer %d outside plausible range", got)
	}
}

// TestBufferKnee sweeps buffer sizes and checks throughput saturates near
// the RTT*bandwidth product: growing the buffer beyond the optimum gains
// little, while halving it costs a lot.
func TestBufferKnee(t *testing.T) {
	cfg := CERNtoANL()
	cfg.LossRate = 0
	opt := OptimalBufferBytes(cfg)
	at := func(buf int) float64 {
		r := run(t, cfg, Transfer{FileBytes: 100 * MB, Streams: 1, BufferBytes: buf})
		return r.ThroughputMbps
	}
	half := at(opt / 2)
	full := at(opt)
	double := at(2 * opt)
	if half > 0.75*full {
		t.Errorf("half buffer %.1f should cost much vs optimum %.1f", half, full)
	}
	if double > 1.25*full {
		t.Errorf("doubling buffer %.1f should gain little vs optimum %.1f", double, full)
	}
}

func TestSmallFilePenalty(t *testing.T) {
	// Setup round trips and slow start dominate a 1 MB transfer; its rate
	// must be a small fraction of a 100 MB transfer at the same settings.
	small := mean(t, Transfer{FileBytes: 1 * MB, Streams: 1, BufferBytes: TunedBufferBytes})
	large := mean(t, Transfer{FileBytes: 100 * MB, Streams: 1, BufferBytes: TunedBufferBytes})
	if small > 0.6*large {
		t.Fatalf("1 MB at %.1f Mbps should be well below 100 MB at %.1f Mbps", small, large)
	}
}

func TestPerStreamAccounting(t *testing.T) {
	cfg := CERNtoANL()
	r := run(t, cfg, Transfer{FileBytes: 50 * MB, Streams: 5, BufferBytes: TunedBufferBytes})
	if len(r.PerStreamMbps) != 5 {
		t.Fatalf("expected 5 per-stream rates, got %d", len(r.PerStreamMbps))
	}
	for i, v := range r.PerStreamMbps {
		if v <= 0 {
			t.Errorf("stream %d reported non-positive rate %v", i, v)
		}
	}
}

// TestMonotoneInFileSizeDuration is a property test: transfer duration is
// non-decreasing in file size for fixed settings.
func TestMonotoneInFileSizeDuration(t *testing.T) {
	cfg := CERNtoANL()
	f := func(a, b uint32) bool {
		sa := int64(a%200+1) * MB / 4
		sb := int64(b%200+1) * MB / 4
		if sa > sb {
			sa, sb = sb, sa
		}
		ra, err := Simulate(cfg, Transfer{FileBytes: sa, Streams: 3, BufferBytes: UntunedBufferBytes})
		if err != nil {
			return false
		}
		rb, err := Simulate(cfg, Transfer{FileBytes: sb, Streams: 3, BufferBytes: UntunedBufferBytes})
		if err != nil {
			return false
		}
		return ra.Duration <= rb.Duration
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestThroughputPositiveProperty: any valid transfer completes with positive
// throughput and duration.
func TestThroughputPositiveProperty(t *testing.T) {
	cfg := CERNtoANL()
	f := func(sizeKB uint16, streams uint8, bufKB uint8) bool {
		tr := Transfer{
			FileBytes:   int64(sizeKB%4096+1) * 1024,
			Streams:     int(streams%12) + 1,
			BufferBytes: (int(bufKB%64) + 2) * 16 * 1024,
		}
		r, err := Simulate(cfg, tr)
		if err != nil {
			return false
		}
		return r.ThroughputMbps > 0 && r.Duration > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanThroughputSmoothing(t *testing.T) {
	tr := Transfer{FileBytes: 25 * MB, Streams: 3, BufferBytes: TunedBufferBytes}
	m1, err := MeanThroughputMbps(CERNtoANL(), tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	m8, err := MeanThroughputMbps(CERNtoANL(), tr, 8)
	if err != nil {
		t.Fatal(err)
	}
	if m1 <= 0 || m8 <= 0 {
		t.Fatalf("means must be positive: %v %v", m1, m8)
	}
	// n < 1 falls back to a single run.
	m0, err := MeanThroughputMbps(CERNtoANL(), tr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m0 != m1 {
		t.Fatalf("n=0 should behave like n=1: %v vs %v", m0, m1)
	}
}

func TestSetupCostCharged(t *testing.T) {
	cfg := CERNtoANL()
	cfg.LossRate = 0
	with := run(t, cfg, Transfer{FileBytes: 1 * MB, Streams: 1, BufferBytes: TunedBufferBytes})
	cfg.SetupRTTs = 0
	without := run(t, cfg, Transfer{FileBytes: 1 * MB, Streams: 1, BufferBytes: TunedBufferBytes})
	diff := with.Duration - without.Duration
	want := 3 * 125 * time.Millisecond
	if diff < want-time.Millisecond || diff > want+50*time.Millisecond {
		t.Fatalf("setup cost %v, want about %v", diff, want)
	}
}
