package netsim

import (
	"math"
	"testing"
)

// TestLossLimitedThroughputMatchesMathis validates the TCP model against
// the classic Mathis formula: a loss-limited Reno flow achieves roughly
// MSS/(RTT*sqrt(2p/3)). The round model is an approximation, so agreement
// within a factor of two across two decades of loss rate is the bar.
func TestLossLimitedThroughputMatchesMathis(t *testing.T) {
	for _, p := range []float64{1e-3, 1e-2} {
		cfg := CERNtoANL()
		cfg.CrossTrafficMbps = 0 // leave headroom so loss, not the link, binds
		cfg.LossRate = p
		cfg.SetupRTTs = 0
		got, err := MeanThroughputMbps(cfg, Transfer{
			FileBytes:   200 * MB,
			Streams:     1,
			BufferBytes: 8 * 1024 * 1024, // window never the limit
		}, 10)
		if err != nil {
			t.Fatal(err)
		}
		mathis := float64(cfg.MSS) * 8 / cfg.RTT.Seconds() / math.Sqrt(2*p/3) / 1e6
		if mathis > cfg.LinkMbps {
			mathis = cfg.LinkMbps // capacity clamps the formula
		}
		ratio := got / mathis
		if ratio < 0.5 || ratio > 2.0 {
			t.Errorf("p=%g: model %.2f Mbps vs Mathis %.2f Mbps (ratio %.2f)",
				p, got, mathis, ratio)
		}
	}
}

// TestWindowLimitedThroughputExact validates the window-limited regime: a
// lossless clamped flow runs at exactly buffer/RTT.
func TestWindowLimitedThroughputExact(t *testing.T) {
	cfg := CERNtoANL()
	cfg.LossRate = 0
	cfg.SetupRTTs = 0
	buf := 128 * 1024
	r, err := Simulate(cfg, Transfer{FileBytes: 200 * MB, Streams: 1, BufferBytes: buf})
	if err != nil {
		t.Fatal(err)
	}
	want := float64(buf) * 8 / cfg.RTT.Seconds() / 1e6
	if r.ThroughputMbps < 0.9*want || r.ThroughputMbps > 1.02*want {
		t.Fatalf("window-limited %.2f Mbps, want ~%.2f", r.ThroughputMbps, want)
	}
}

// TestCapacityLimitedThroughput validates the third regime: with huge
// buffers and no loss, a single flow fills the available link.
func TestCapacityLimitedThroughput(t *testing.T) {
	cfg := CERNtoANL()
	cfg.LossRate = 0
	cfg.SetupRTTs = 0
	r, err := Simulate(cfg, Transfer{FileBytes: 500 * MB, Streams: 1, BufferBytes: 16 * 1024 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	avail := cfg.LinkMbps - cfg.CrossTrafficMbps
	if r.ThroughputMbps < 0.85*avail || r.ThroughputMbps > 1.05*avail {
		t.Fatalf("capacity-limited %.2f Mbps, want ~%.1f", r.ThroughputMbps, avail)
	}
}
