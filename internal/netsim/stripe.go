package netsim

import (
	"fmt"
	"math"
	"time"
)

// HostProfile models the end-system resources of one Grid node taking part
// in a transfer. Section 5.3 of the paper observes that an object
// replication server needs more CPU and disk I/O per network byte than a
// plain file replication server, because the object copier tool adds file
// system calls, context switches, and bus traffic; this profile lets that
// overhead be expressed.
type HostProfile struct {
	// NICMbps is the network interface speed in megabits per second.
	NICMbps float64

	// DiskMBps is the sustainable disk throughput in megabytes per second.
	DiskMBps float64

	// CPUPerByteNs is the CPU cost in nanoseconds charged per byte moved.
	// A host saturates when CPUPerByteNs * rate reaches one second per
	// second; e.g. 10 ns/byte caps throughput at 100 MB/s of CPU headroom.
	CPUPerByteNs float64
}

// DefaultHost returns the profile of an era-typical replication server that
// comfortably saturates a 45 Mbps WAN: fast Ethernet, a RAID able to stream
// tens of MB/s, and CPU that is not the bottleneck for plain file serving.
func DefaultHost() HostProfile {
	return HostProfile{NICMbps: 100, DiskMBps: 30, CPUPerByteNs: 5}
}

// CapBytesPerSec returns the throughput ceiling this host can sustain.
// A zero field means "not a constraint".
func (h HostProfile) CapBytesPerSec() float64 {
	cap := math.Inf(1)
	if h.NICMbps > 0 {
		cap = math.Min(cap, h.NICMbps*1e6/8)
	}
	if h.DiskMBps > 0 {
		cap = math.Min(cap, h.DiskMBps*1e6)
	}
	if h.CPUPerByteNs > 0 {
		cap = math.Min(cap, 1e9/h.CPUPerByteNs)
	}
	return cap
}

// StripedTransfer describes an m-host to n-host striped GridFTP transfer
// (Section 3.2: "striped data transfer (m hosts to n hosts, possibly using
// multiple TCP streams if also parallel)"). The file is divided across
// min(SourceHosts, DestHosts) host pairs, each of which runs StreamsPerPair
// parallel TCP streams; every stream still shares the single WAN bottleneck.
type StripedTransfer struct {
	FileBytes      int64
	SourceHosts    int
	DestHosts      int
	StreamsPerPair int
	BufferBytes    int
	Source         HostProfile
	Dest           HostProfile
}

func (t StripedTransfer) validate() error {
	if t.FileBytes <= 0 {
		return fmt.Errorf("netsim: FileBytes must be positive, got %d", t.FileBytes)
	}
	if t.SourceHosts < 1 || t.DestHosts < 1 {
		return fmt.Errorf("netsim: striped transfer needs at least one host on each side")
	}
	if t.StreamsPerPair < 1 {
		return fmt.Errorf("netsim: StreamsPerPair must be >= 1, got %d", t.StreamsPerPair)
	}
	if t.BufferBytes < 1024 {
		return fmt.Errorf("netsim: BufferBytes must be >= 1024, got %d", t.BufferBytes)
	}
	return nil
}

// Pairs returns the number of concurrently striping host pairs.
func (t StripedTransfer) Pairs() int {
	if t.SourceHosts < t.DestHosts {
		return t.SourceHosts
	}
	return t.DestHosts
}

// StripedResult reports a striped transfer outcome.
type StripedResult struct {
	Duration       time.Duration
	ThroughputMbps float64
	PerPairMbps    []float64
}

// SimulateStriped runs a striped, parallel transfer through the round model.
// Each round, per-flow windows are offered, then scaled down by iterative
// water-filling across three constraint sets: the shared WAN bottleneck, the
// per-source-host cap, and the per-destination-host cap.
func SimulateStriped(cfg Config, tr StripedTransfer) (StripedResult, error) {
	if err := cfg.validate(); err != nil {
		return StripedResult{}, err
	}
	if err := tr.validate(); err != nil {
		return StripedResult{}, err
	}

	pairs := tr.Pairs()
	perPair := float64(tr.FileBytes) / float64(pairs)
	perStream := perPair / float64(tr.StreamsPerPair)
	rtt := cfg.RTT.Seconds()
	capacity := cfg.availBytesPerSec()
	mss := float64(cfg.MSS)
	setup := float64(cfg.SetupRTTs) * rtt

	srcCap := tr.Source.CapBytesPerSec()
	dstCap := tr.Dest.CapBytesPerSec()

	type sflow struct {
		flow
		pair int
	}
	flows := make([]*sflow, 0, pairs*tr.StreamsPerPair)
	for p := 0; p < pairs; p++ {
		for s := 0; s < tr.StreamsPerPair; s++ {
			flows = append(flows, &sflow{
				flow: flow{
					cwnd:      2 * mss,
					ssthresh:  float64(tr.BufferBytes),
					clamp:     float64(tr.BufferBytes),
					remaining: perStream,
					total:     perStream,
					start:     setup,
				},
				pair: p,
			})
		}
	}

	rng := newRand(cfg.Seed)
	queue := 0.0
	now := setup
	pairEnd := make([]float64, pairs)
	const maxRounds = 4_000_000

	for round := 0; ; round++ {
		if round >= maxRounds {
			return StripedResult{}, fmt.Errorf("netsim: striped transfer did not converge in %d rounds", maxRounds)
		}
		active := 0
		offered := 0.0
		pairOffered := make([]float64, pairs)
		for _, f := range flows {
			if f.done {
				continue
			}
			active++
			f.sent = math.Min(math.Min(f.cwnd, f.clamp), f.remaining)
			offered += f.sent
			pairOffered[f.pair] += f.sent
		}
		if active == 0 {
			break
		}

		effRTT := rtt + queue/capacity
		drained := capacity * effRTT
		wanRoom := drained + (float64(cfg.QueueBytes) - queue)

		// Water-fill: per-flow acceptance fractions under WAN and host caps.
		// Host caps apply to each pair independently (each pair is a
		// distinct physical source/destination machine).
		acceptPair := make([]float64, pairs)
		hostRoom := math.Min(srcCap, dstCap) * effRTT
		for p := 0; p < pairs; p++ {
			acceptPair[p] = 1.0
			if pairOffered[p] > hostRoom && pairOffered[p] > 0 {
				acceptPair[p] = hostRoom / pairOffered[p]
			}
		}
		afterHost := 0.0
		for p := 0; p < pairs; p++ {
			afterHost += pairOffered[p] * acceptPair[p]
		}
		wanScale := 1.0
		overflow := 0.0
		if afterHost > wanRoom && afterHost > 0 {
			wanScale = wanRoom / afterHost
			overflow = afterHost - wanRoom
		}
		queue = math.Max(0, queue+afterHost*wanScale-drained)
		if queue > float64(cfg.QueueBytes) {
			queue = float64(cfg.QueueBytes)
		}
		congProb := 0.0
		if overflow > 0 {
			congProb = math.Min(1, 3*overflow/afterHost)
		}

		for _, f := range flows {
			if f.done {
				continue
			}
			delivered := f.sent * acceptPair[f.pair] * wanScale
			f.remaining -= delivered
			if f.remaining <= 1e-6 {
				f.done = true
				frac := 1.0
				if delivered > 0 {
					frac = math.Max(0, math.Min(1, (delivered+f.remaining)/delivered))
				}
				f.end = now + effRTT*frac
				if f.end > pairEnd[f.pair] {
					pairEnd[f.pair] = f.end
				}
			}
			segs := delivered / mss
			lost := false
			if congProb > 0 && f.sent > 0 && rng.Float64() < congProb {
				lost = true
			} else if cfg.LossRate > 0 && segs > 0 && rng.Float64() < 1-math.Pow(1-cfg.LossRate, segs) {
				lost = true
			}
			if f.done {
				continue
			}
			if lost {
				f.ssthresh = math.Max(f.cwnd/2, 2*mss)
				f.cwnd = f.ssthresh
			} else if f.cwnd < f.ssthresh {
				f.cwnd = math.Min(f.cwnd*2, f.clamp)
			} else {
				f.cwnd = math.Min(f.cwnd+mss, f.clamp)
			}
		}
		now += effRTT
	}

	res := StripedResult{PerPairMbps: make([]float64, pairs)}
	last := 0.0
	for p := 0; p < pairs; p++ {
		if pairEnd[p] > last {
			last = pairEnd[p]
		}
		span := pairEnd[p] - setup
		if span > 0 {
			res.PerPairMbps[p] = perPair * 8 / span / 1e6
		}
	}
	res.Duration = time.Duration(last * float64(time.Second))
	if last > 0 {
		res.ThroughputMbps = float64(tr.FileBytes) * 8 / last / 1e6
	}
	return res, nil
}
