package scrub

import (
	"context"
	"hash"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"
)

// Limiter is a token-bucket byte-rate limiter. The scrubber reads every
// cataloged replica back from disk; unpaced, a full pass would compete
// with live GridFTP transfers for the same spindles. Wait debits the
// bucket before each read so the scan proceeds at a configured bytes/s
// and never starves transfers. A nil *Limiter is unlimited.
type Limiter struct {
	mu     sync.Mutex
	rate   float64 // bytes per second
	burst  float64 // bucket capacity
	tokens float64
	last   time.Time
}

// NewLimiter builds a limiter admitting bytesPerSec. The bucket holds one
// second of budget, so short bursts (a small file) pass undelayed while
// the long-run rate converges on bytesPerSec. bytesPerSec <= 0 returns
// nil: no limiting.
func NewLimiter(bytesPerSec int64) *Limiter {
	if bytesPerSec <= 0 {
		return nil
	}
	r := float64(bytesPerSec)
	return &Limiter{rate: r, burst: r, tokens: r, last: time.Now()}
}

// Wait blocks until n bytes of budget are available or ctx is done. Debts
// larger than the bucket are amortized: the caller is delayed for the
// full deficit, keeping the long-run rate correct for any chunk size.
func (l *Limiter) Wait(ctx context.Context, n int) error {
	if l == nil || n <= 0 {
		return ctx.Err()
	}
	l.mu.Lock()
	now := time.Now()
	l.tokens += now.Sub(l.last).Seconds() * l.rate
	if l.tokens > l.burst {
		l.tokens = l.burst
	}
	l.last = now
	l.tokens -= float64(n)
	deficit := -l.tokens
	l.mu.Unlock()
	if deficit <= 0 {
		return nil
	}
	delay := time.Duration(deficit / l.rate * float64(time.Second))
	t := time.NewTimer(delay)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// scanChunk is the read granularity of a scrub: small enough that the
// limiter paces smoothly, large enough that syscall overhead is noise.
const scanChunk = 256 << 10

// CRC32File recomputes the IEEE CRC-32 of a file at the limiter's pace,
// returning the checksum and how many bytes were read. ctx aborts the
// scan between chunks (shutdown must not wait out a long file).
func CRC32File(ctx context.Context, path string, lim *Limiter) (uint32, int64, error) {
	crc, _, n, err := blockCRC32File(ctx, path, 0, lim)
	return crc, n, err
}

// BlockCRC32File is CRC32File's per-block digest mode: one paced pass
// computes both the whole-file CRC and the CRC of every blockSize-sized
// block (the last block covers only the remaining bytes). The parity layer
// compares the block digests against a sidecar's recorded CRCs to localise
// damage to individual blocks instead of condemning the whole file.
func BlockCRC32File(ctx context.Context, path string, blockSize int64, lim *Limiter) (uint32, []uint32, int64, error) {
	if blockSize <= 0 {
		crc, n, err := CRC32File(ctx, path, lim)
		return crc, nil, n, err
	}
	return blockCRC32File(ctx, path, blockSize, lim)
}

func blockCRC32File(ctx context.Context, path string, blockSize int64, lim *Limiter) (uint32, []uint32, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, nil, 0, err
	}
	defer f.Close()
	h := crc32.NewIEEE()
	var (
		blocks  []uint32
		bh      hash.Hash32
		inBlock int64
	)
	if blockSize > 0 {
		bh = crc32.NewIEEE()
	}
	buf := make([]byte, scanChunk)
	var total int64
	for {
		if err := ctx.Err(); err != nil {
			return 0, nil, total, err
		}
		n, err := f.Read(buf)
		if n > 0 {
			if werr := lim.Wait(ctx, n); werr != nil {
				return 0, nil, total, werr
			}
			h.Write(buf[:n])
			if bh != nil {
				chunk := buf[:n]
				for len(chunk) > 0 {
					take := blockSize - inBlock
					if take > int64(len(chunk)) {
						take = int64(len(chunk))
					}
					bh.Write(chunk[:take])
					chunk = chunk[take:]
					inBlock += take
					if inBlock == blockSize {
						blocks = append(blocks, bh.Sum32())
						bh.Reset()
						inBlock = 0
					}
				}
			}
			total += int64(n)
		}
		if err == io.EOF {
			if bh != nil && inBlock > 0 {
				blocks = append(blocks, bh.Sum32())
			}
			return h.Sum32(), blocks, total, nil
		}
		if err != nil {
			return 0, nil, total, err
		}
	}
}
