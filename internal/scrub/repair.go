package scrub

import (
	"context"
	"log"
	"sync"

	"gdmp/internal/retry"
)

// RepairFunc re-replicates one logical file from a surviving location.
// internal/core supplies it: a scheduler-admitted pull through the full
// replication pipeline, CRC-verified against the replica catalog.
type RepairFunc func(ctx context.Context, lfn string) error

// ReconstructFunc attempts an erasure-coded local rebuild of one logical
// file from its parity sidecar. It reports whether the file is now healthy;
// false (or an error) means the damage exceeded the parity budget or no
// usable sidecar exists, and the caller falls through to the WAN pull.
type ReconstructFunc func(ctx context.Context, lfn string) (bool, error)

// RepairConfig assembles a Repairer.
type RepairConfig struct {
	// Do performs one repair attempt (required).
	Do RepairFunc

	// Reconstruct, when set, is tried before Do on every attempt: a
	// parity rebuild from local bytes is strictly cheaper than a WAN
	// re-pull, so the repair strategy is reconstruct-first. A failed
	// reconstruction is not a repair failure — it just demotes the
	// attempt to Do.
	Reconstruct ReconstructFunc

	// Policy is the per-file retry/backoff budget. Zero fields take the
	// retry package defaults; the policy is labeled "scrub.repair".
	Policy retry.Policy

	// Metrics receives the gdmp_repair_* series (required).
	Metrics *Metrics

	// Logger receives diagnostics; nil discards.
	Logger *log.Logger
}

// Repairer is the repair driver: a deduplicating queue of logical files
// that need re-replication, drained by one background worker under a
// retry/backoff policy. A repair that exhausts its budget is dropped and
// counted — the file is still withdrawn from the catalog, so the next
// scrub or anti-entropy round re-discovers and re-queues it; the loop,
// not the queue, is what guarantees convergence.
type Repairer struct {
	cfg RepairConfig
	ctx context.Context

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []string
	queued map[string]bool // queued or being repaired right now
	active string          // LFN the worker is on, "" when idle
	closed bool

	wg sync.WaitGroup
}

// NewRepairer starts a repair driver whose work runs under ctx (the
// site's lifetime: canceling it aborts the in-flight repair and stops
// the worker).
func NewRepairer(ctx context.Context, cfg RepairConfig) *Repairer {
	if cfg.Logger == nil {
		cfg.Logger = log.New(discard{}, "", 0)
	}
	cfg.Policy.Op = "scrub.repair"
	r := &Repairer{cfg: cfg, ctx: ctx, queued: make(map[string]bool)}
	r.cond = sync.NewCond(&r.mu)
	r.wg.Add(1)
	go r.worker()
	// Wake the worker when the site context dies so Close never hangs on
	// an empty queue.
	go func() {
		<-ctx.Done()
		r.cond.Broadcast()
	}()
	return r
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// Add queues one logical file for re-replication. Files already queued
// or mid-repair coalesce; it reports whether the file was newly queued.
func (r *Repairer) Add(lfn string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed || r.queued[lfn] {
		return false
	}
	r.queued[lfn] = true
	r.queue = append(r.queue, lfn)
	r.cfg.Metrics.RepairDepth.Set(int64(len(r.queue)))
	r.cond.Signal()
	return true
}

// Pending reports how many files are queued (the in-flight one excluded).
func (r *Repairer) Pending() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.queue)
}

// Quiesce blocks until the queue is empty and the worker idle, or ctx is
// done. Convergence tests use it as the "round finished" barrier.
func (r *Repairer) Quiesce(ctx context.Context) error {
	done := make(chan struct{})
	stop := context.AfterFunc(ctx, func() { r.cond.Broadcast() })
	defer stop()
	go func() {
		defer close(done)
		r.mu.Lock()
		defer r.mu.Unlock()
		for len(r.queue) > 0 || r.active != "" {
			if ctx.Err() != nil || r.closed {
				return
			}
			r.cond.Wait()
		}
	}()
	select {
	case <-done:
		return ctx.Err()
	case <-ctx.Done():
		<-done
		return ctx.Err()
	}
}

// Close stops the worker; the in-flight repair is abandoned only if the
// construction ctx is already canceled (sites cancel before closing).
func (r *Repairer) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		r.wg.Wait()
		return
	}
	r.closed = true
	r.cond.Broadcast()
	r.mu.Unlock()
	r.wg.Wait()
}

func (r *Repairer) worker() {
	defer r.wg.Done()
	for {
		r.mu.Lock()
		for len(r.queue) == 0 && !r.closed && r.ctx.Err() == nil {
			r.cond.Wait()
		}
		if r.closed || r.ctx.Err() != nil {
			r.active = ""
			r.cond.Broadcast()
			r.mu.Unlock()
			return
		}
		lfn := r.queue[0]
		r.queue = r.queue[1:]
		r.active = lfn
		r.cfg.Metrics.RepairDepth.Set(int64(len(r.queue)))
		r.mu.Unlock()

		pol := r.cfg.Policy
		err := pol.Do(r.ctx, func(int) error {
			r.cfg.Metrics.RepairAttempts.Inc()
			if r.cfg.Reconstruct != nil {
				if ok, rerr := r.cfg.Reconstruct(r.ctx, lfn); rerr == nil && ok {
					return nil
				} else if rerr != nil && r.ctx.Err() == nil {
					r.cfg.Logger.Printf("scrub: local reconstruct %s: %v (falling back to re-pull)", lfn, rerr)
				}
			}
			return r.cfg.Do(r.ctx, lfn)
		})
		switch {
		case err == nil:
			r.cfg.Metrics.RepairSuccess.Inc()
		case r.ctx.Err() != nil:
			// Shutdown, not a verdict: the journal still holds the intent
			// and the next scrub round re-discovers the gap.
		default:
			r.cfg.Metrics.RepairFailure.Inc()
			r.cfg.Logger.Printf("scrub: repair %s abandoned: %v", lfn, err)
		}

		r.mu.Lock()
		r.active = ""
		delete(r.queued, lfn)
		r.cond.Broadcast()
		r.mu.Unlock()
	}
}
