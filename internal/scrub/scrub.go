// Package scrub is the self-healing layer of a GDMP site: the machinery
// that turns "survive the fault" (retries, journaling, crash recovery)
// into "converge back to correct". The paper leans on GridFTP's
// end-to-end CRC to make each transfer safe (Section 4.3) but says
// nothing about what keeps a replica correct afterwards; the EU DataGrid
// follow-up work reports catalog/disk divergence and lost notifications
// as the dominant operational failure. This package supplies the three
// cooperating loops that close that gap:
//
//   - a local scrubber that re-reads every cataloged replica at a
//     rate-limited pace (Limiter) and recomputes its CRC against the
//     cataloged value, so bit-rot is detected before a consumer fetches
//     corrupt bytes;
//   - an anti-entropy exchange in which peers periodically swap a compact
//     digest of (LFN, size, CRC) and diff it (Compare), so a consumer
//     discovers files it missed (lost notification, crash window) and a
//     producer discovers dangling catalog locations;
//   - a repair driver (Repairer) that re-replicates any withdrawn or
//     missing replica from a surviving location, with retry/backoff.
//
// The package owns the generic machinery — pacing, digest diffing, the
// repair queue, the background Daemon, and the gdmp_scrub_* /
// gdmp_antientropy_* / gdmp_repair_* instrumentation. The site-specific
// verbs (what "verify", "quarantine", and "re-replicate" mean against a
// live catalog and scheduler) are supplied by internal/core, exactly as
// internal/retry and internal/xfer split policy from mechanism.
package scrub

import "sort"

// Entry is one line of a site's integrity digest: just enough to decide
// whether two replicas of a logical file can be byte-identical. Digests
// are exchanged over the gdmp.digest RPC verb, so they stay compact —
// (LFN, size, CRC), not the full catalog record.
type Entry struct {
	LFN   string
	Size  int64
	CRC32 string
}

// Diff is the outcome of comparing a local digest against a peer's.
type Diff struct {
	// Missing are entries the peer holds that the local site lacks — the
	// signature of a lost notification or a crash window. They become
	// pull jobs.
	Missing []Entry

	// Stale are entries both sites hold whose size or CRC disagree. One
	// side has diverged from the published content; each side verifies
	// its own bytes against its own cataloged checksum to find out which.
	Stale []Entry

	// Extra are entries the local site holds that the peer lacks. They
	// are the probe set for dangling-location detection: if the replica
	// catalog still lists the peer as a location for one of these, that
	// location is withdrawn.
	Extra []Entry
}

// Compare diffs a local digest against a remote one. Both inputs may be
// in any order; the outputs are sorted by LFN so callers iterate
// deterministically.
func Compare(local, remote []Entry) Diff {
	loc := make(map[string]Entry, len(local))
	for _, e := range local {
		loc[e.LFN] = e
	}
	var d Diff
	seen := make(map[string]bool, len(remote))
	for _, re := range remote {
		seen[re.LFN] = true
		le, ok := loc[re.LFN]
		if !ok {
			d.Missing = append(d.Missing, re)
			continue
		}
		if le.Size != re.Size || le.CRC32 != re.CRC32 {
			d.Stale = append(d.Stale, re)
		}
	}
	for _, le := range local {
		if !seen[le.LFN] {
			d.Extra = append(d.Extra, le)
		}
	}
	sortEntries(d.Missing)
	sortEntries(d.Stale)
	sortEntries(d.Extra)
	return d
}

func sortEntries(es []Entry) {
	sort.Slice(es, func(i, j int) bool { return es[i].LFN < es[j].LFN })
}

// Report summarizes one local scrub pass.
type Report struct {
	// Scanned is how many catalog entries were examined this pass and
	// Bytes how many bytes were re-read for checksumming.
	Scanned int
	Bytes   int64

	// Corrupt counts replicas whose bytes failed their cataloged CRC
	// (quarantined and withdrawn); Missing counts entries whose bytes
	// were gone entirely (withdrawn).
	Corrupt int
	Missing int

	// Repairs is how many re-replications the pass queued.
	Repairs int

	// Rebuilt counts corrupt replicas repaired in place from their parity
	// sidecars (no quarantine, no WAN traffic); Fallbacks counts corrupt
	// replicas on a parity-enabled site whose damage exceeded the parity
	// budget — or whose sidecar was missing or corrupt — and therefore
	// took the quarantine + re-pull path. On a parity-enabled site,
	// Corrupt == Fallbacks.
	Rebuilt   int
	Fallbacks int

	// Resumed reports that the pass continued from a journaled cursor
	// (restart mid-scan) rather than starting at the beginning.
	Resumed bool
}

// ExchangeReport summarizes one anti-entropy round across all peers.
type ExchangeReport struct {
	// Peers is how many peers were contacted, Failed how many of those
	// exchanges errored (peer down, RPC fault).
	Peers  int
	Failed int

	// Missing, Stale, and Dangling count the digest differences found,
	// matching the gdmp_antientropy_diff_total{kind} series.
	Missing  int
	Stale    int
	Dangling int

	// Repairs is how many re-replications the round queued.
	Repairs int
}
