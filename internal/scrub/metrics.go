package scrub

import "gdmp/internal/obs"

// Metric family prefixes. Three families because the three loops fail
// independently: a site can scrub cleanly while its anti-entropy peer is
// down, and repairs can back up while the scanner is idle.
const (
	ScrubMetricsPrefix       = "gdmp_scrub"
	AntiEntropyMetricsPrefix = "gdmp_antientropy"
	RepairMetricsPrefix      = "gdmp_repair"
	ParityMetricsPrefix      = "gdmp_parity"
)

// Diff kinds recorded in gdmp_antientropy_diff_total{kind}.
const (
	DiffMissing  = "missing"
	DiffStale    = "stale"
	DiffDangling = "dangling"
)

// Metrics bundles the self-healing collectors. One instance per site.
type Metrics struct {
	// Local scrubber.
	ScrubScanned     *obs.Counter
	ScrubBytes       *obs.Counter
	ScrubCorrupt     *obs.Counter
	ScrubMissing     *obs.Counter
	ScrubPasses      *obs.Counter
	ScrubPassSeconds *obs.Histogram
	QuarantineSwept  *obs.Counter
	QuarantineFiles  *obs.Gauge

	// Anti-entropy exchange.
	AERounds *obs.Counter
	AEPeers  *obs.CounterVec // {outcome}
	AEDiffs  *obs.CounterVec // {kind}

	// Repair driver.
	RepairAttempts *obs.Counter
	RepairSuccess  *obs.Counter
	RepairFailure  *obs.Counter
	RepairDepth    *obs.Gauge

	// Erasure-coded local repair. Local-vs-repulled bytes are the headline
	// numbers: they separate damage healed from the site's own parity
	// sidecars from damage that had to cross the WAN again.
	ParitySidecars      *obs.Counter
	ParityRebuilds      *obs.Counter
	ParityFallbacks     *obs.Counter
	RepairBytesLocal    *obs.Counter
	RepairBytesRepulled *obs.Counter
}

// NewMetrics registers the self-healing series in r (obs.Default if nil).
func NewMetrics(r *obs.Registry) *Metrics {
	if r == nil {
		r = obs.Default
	}
	return &Metrics{
		ScrubScanned: r.Counter(ScrubMetricsPrefix+"_files_scanned_total",
			"Catalog entries examined by the local scrubber."),
		ScrubBytes: r.Counter(ScrubMetricsPrefix+"_bytes_scanned_total",
			"Bytes re-read from disk for scrub checksumming."),
		ScrubCorrupt: r.Counter(ScrubMetricsPrefix+"_corrupt_total",
			"Replicas whose bytes failed their cataloged CRC (quarantined and withdrawn)."),
		ScrubMissing: r.Counter(ScrubMetricsPrefix+"_missing_total",
			"Cataloged replicas whose bytes were gone from disk (withdrawn)."),
		ScrubPasses: r.Counter(ScrubMetricsPrefix+"_passes_total",
			"Completed full scrub passes over the local catalog."),
		ScrubPassSeconds: r.Histogram(ScrubMetricsPrefix+"_pass_seconds",
			"Wall-clock duration of completed scrub passes.", nil),
		QuarantineSwept: r.Counter(ScrubMetricsPrefix+"_quarantine_swept_total",
			"Quarantined files removed by the age/count retention sweep."),
		QuarantineFiles: r.Gauge(ScrubMetricsPrefix+"_quarantine_files",
			"Files currently held in the quarantine directory."),
		AERounds: r.Counter(AntiEntropyMetricsPrefix+"_rounds_total",
			"Anti-entropy exchange rounds started."),
		AEPeers: r.CounterVec(AntiEntropyMetricsPrefix+"_peers_total",
			"Per-peer digest exchanges, by outcome.", "outcome"),
		AEDiffs: r.CounterVec(AntiEntropyMetricsPrefix+"_diff_total",
			"Digest differences found against peers, by kind (missing/stale/dangling).", "kind"),
		RepairAttempts: r.Counter(RepairMetricsPrefix+"_attempts_total",
			"Re-replication attempts by the repair driver (retries included)."),
		RepairSuccess: r.Counter(RepairMetricsPrefix+"_success_total",
			"Replicas successfully re-replicated and verified."),
		RepairFailure: r.Counter(RepairMetricsPrefix+"_failure_total",
			"Repairs abandoned after exhausting their retry budget."),
		RepairDepth: r.Gauge(RepairMetricsPrefix+"_queue_depth",
			"Logical files queued for re-replication."),
		ParitySidecars: r.Counter(ParityMetricsPrefix+"_sidecars_total",
			"Parity sidecars generated for published or landed replicas."),
		ParityRebuilds: r.Counter(ParityMetricsPrefix+"_rebuilds_total",
			"Corrupt replicas rebuilt in place from their parity sidecars."),
		ParityFallbacks: r.Counter(ParityMetricsPrefix+"_fallbacks_total",
			"Corrupt replicas whose damage exceeded the parity budget (or whose sidecar was unusable), forcing a WAN re-pull."),
		RepairBytesLocal: r.Counter(RepairMetricsPrefix+"_bytes_local_total",
			"Damaged bytes reconstructed locally from parity, with no network traffic."),
		RepairBytesRepulled: r.Counter(RepairMetricsPrefix+"_bytes_repulled_total",
			"Bytes re-fetched from remote replicas to replace irreparable local copies."),
	}
}
