package scrub

import (
	"context"
	"log"
	"sync"
	"time"
)

// Ops are the site-side verbs the background daemon drives. internal/core
// implements them against the live catalog, replica catalog client, and
// pull scheduler.
type Ops interface {
	// ScrubPass walks the local catalog once (resuming from any journaled
	// cursor), verifying each replica's bytes against its cataloged CRC.
	ScrubPass(ctx context.Context) (Report, error)

	// AntiEntropyPass exchanges digests with every peer and queues the
	// repairs the differences call for.
	AntiEntropyPass(ctx context.Context) (ExchangeReport, error)
}

// DaemonConfig paces the background loops. A zero interval disables that
// loop (the on-demand paths — gdmp fsck, explicit passes — still work).
type DaemonConfig struct {
	ScrubEvery       time.Duration
	AntiEntropyEvery time.Duration
}

// Daemon runs the scrub and anti-entropy loops on their intervals until
// Close (or the construction context) stops it. The repair driver is not
// the daemon's: repairs flow from the passes into the site's Repairer,
// which drains continuously.
type Daemon struct {
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// NewDaemon starts the enabled loops under ctx. Each loop waits a full
// interval before its first pass, so a restarting site finishes recovery
// before it starts re-reading its disk.
func NewDaemon(ctx context.Context, cfg DaemonConfig, ops Ops, logger *log.Logger) *Daemon {
	if logger == nil {
		logger = log.New(discard{}, "", 0)
	}
	dctx, cancel := context.WithCancel(ctx)
	d := &Daemon{cancel: cancel}
	if cfg.ScrubEvery > 0 {
		d.loop(dctx, cfg.ScrubEvery, func() {
			rep, err := ops.ScrubPass(dctx)
			if err != nil {
				logger.Printf("scrub: pass: %v", err)
				return
			}
			if rep.Corrupt+rep.Missing > 0 {
				logger.Printf("scrub: pass scanned %d files (%d bytes): %d corrupt, %d missing, %d repairs queued",
					rep.Scanned, rep.Bytes, rep.Corrupt, rep.Missing, rep.Repairs)
			}
		})
	}
	if cfg.AntiEntropyEvery > 0 {
		d.loop(dctx, cfg.AntiEntropyEvery, func() {
			rep, err := ops.AntiEntropyPass(dctx)
			if err != nil {
				logger.Printf("scrub: anti-entropy: %v", err)
				return
			}
			if rep.Missing+rep.Stale+rep.Dangling > 0 {
				logger.Printf("scrub: anti-entropy round over %d peers (%d failed): %d missing, %d stale, %d dangling, %d repairs queued",
					rep.Peers, rep.Failed, rep.Missing, rep.Stale, rep.Dangling, rep.Repairs)
			}
		})
	}
	return d
}

func (d *Daemon) loop(ctx context.Context, every time.Duration, pass func()) {
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				pass()
			case <-ctx.Done():
				return
			}
		}
	}()
}

// Close stops the loops and waits for any in-flight pass to observe the
// cancellation and return.
func (d *Daemon) Close() {
	d.cancel()
	d.wg.Wait()
}
