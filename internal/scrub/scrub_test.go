package scrub

import (
	"context"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"gdmp/internal/obs"
	"gdmp/internal/retry"
)

func entryNames(es []Entry) []string {
	var out []string
	for _, e := range es {
		out = append(out, e.LFN)
	}
	return out
}

func TestCompare(t *testing.T) {
	local := []Entry{
		{LFN: "a", Size: 1, CRC32: "11111111"},
		{LFN: "c", Size: 3, CRC32: "33333333"},
		{LFN: "d", Size: 4, CRC32: "44444444"},
		{LFN: "e", Size: 5, CRC32: "55555555"},
	}
	remote := []Entry{
		{LFN: "b", Size: 2, CRC32: "22222222"},
		{LFN: "a", Size: 1, CRC32: "11111111"},
		{LFN: "c", Size: 3, CRC32: "deadbeef"}, // CRC differs
		{LFN: "d", Size: 9, CRC32: "44444444"}, // size differs
	}
	d := Compare(local, remote)
	if got := entryNames(d.Missing); !reflect.DeepEqual(got, []string{"b"}) {
		t.Fatalf("Missing = %v, want [b]", got)
	}
	if got := entryNames(d.Stale); !reflect.DeepEqual(got, []string{"c", "d"}) {
		t.Fatalf("Stale = %v, want [c d]", got)
	}
	if got := entryNames(d.Extra); !reflect.DeepEqual(got, []string{"e"}) {
		t.Fatalf("Extra = %v, want [e]", got)
	}
}

func TestCompareEmpty(t *testing.T) {
	d := Compare(nil, nil)
	if len(d.Missing)+len(d.Stale)+len(d.Extra) != 0 {
		t.Fatalf("empty digests produced diff %+v", d)
	}
}

func TestLimiterPacing(t *testing.T) {
	// 64 KiB/s with a 64 KiB burst: consuming 192 KiB must take at least
	// ~2 s of simulated deficit. Use a generous lower bound to stay
	// timing-robust under -race.
	lim := NewLimiter(64 << 10)
	ctx := context.Background()
	start := time.Now()
	for i := 0; i < 3; i++ {
		if err := lim.Wait(ctx, 64<<10); err != nil {
			t.Fatalf("Wait: %v", err)
		}
	}
	if el := time.Since(start); el < 1200*time.Millisecond {
		t.Fatalf("3x64KiB at 64KiB/s took %v, want >= 1.2s", el)
	}
}

func TestLimiterNilAndCancel(t *testing.T) {
	var nilLim *Limiter
	if err := nilLim.Wait(context.Background(), 1<<30); err != nil {
		t.Fatalf("nil limiter Wait: %v", err)
	}
	lim := NewLimiter(1) // 1 byte/s, 1-byte burst: a 10-byte debt blocks ~9s
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := lim.Wait(ctx, 10); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Wait under dead ctx = %v, want deadline", err)
	}
}

func TestCRC32File(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "blob")
	data := make([]byte, 3*scanChunk/2) // forces multiple chunks
	for i := range data {
		data[i] = byte(i * 7)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	sum, n, err := CRC32File(context.Background(), path, nil)
	if err != nil {
		t.Fatalf("CRC32File: %v", err)
	}
	if n != int64(len(data)) {
		t.Fatalf("read %d bytes, want %d", n, len(data))
	}
	if want := crc32.ChecksumIEEE(data); sum != want {
		t.Fatalf("crc = %08x, want %08x", sum, want)
	}
	if _, _, err := CRC32File(context.Background(), filepath.Join(dir, "absent"), nil); !os.IsNotExist(err) {
		t.Fatalf("absent file err = %v, want not-exist", err)
	}
}

func TestBlockCRC32File(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "blob")
	data := make([]byte, 3*scanChunk/2+777) // multiple chunks, ragged tail
	for i := range data {
		data[i] = byte(i * 13)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	// A block size that does not divide the chunk size, so block
	// boundaries land mid-chunk.
	const bs = 100_000
	sum, blocks, n, err := BlockCRC32File(context.Background(), path, bs, nil)
	if err != nil {
		t.Fatalf("BlockCRC32File: %v", err)
	}
	if n != int64(len(data)) {
		t.Fatalf("read %d bytes, want %d", n, len(data))
	}
	if want := crc32.ChecksumIEEE(data); sum != want {
		t.Fatalf("whole-file crc = %08x, want %08x", sum, want)
	}
	wantBlocks := (len(data) + bs - 1) / bs
	if len(blocks) != wantBlocks {
		t.Fatalf("got %d block digests, want %d", len(blocks), wantBlocks)
	}
	for i, got := range blocks {
		lo := i * bs
		hi := lo + bs
		if hi > len(data) {
			hi = len(data)
		}
		if want := crc32.ChecksumIEEE(data[lo:hi]); got != want {
			t.Fatalf("block %d crc = %08x, want %08x", i, got, want)
		}
	}
	// blockSize <= 0 degrades to the whole-file mode.
	sum2, blocks2, _, err := BlockCRC32File(context.Background(), path, 0, nil)
	if err != nil || sum2 != sum || blocks2 != nil {
		t.Fatalf("blockSize=0: sum=%08x blocks=%v err=%v", sum2, blocks2, err)
	}
}

func fastPolicy(attempts int) retry.Policy {
	return retry.Policy{
		Attempts:  attempts,
		BaseDelay: time.Millisecond,
		MaxDelay:  2 * time.Millisecond,
		Jitter:    0.01,
	}
}

func newTestRepairer(t *testing.T, attempts int, do RepairFunc) (*Repairer, *Metrics) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	m := NewMetrics(obs.NewRegistry())
	r := NewRepairer(ctx, RepairConfig{Do: do, Policy: fastPolicy(attempts), Metrics: m})
	t.Cleanup(func() { cancel(); r.Close() })
	return r, m
}

func TestRepairerSuccessAndDedup(t *testing.T) {
	started := make(chan string, 16)
	release := make(chan struct{})
	r, m := newTestRepairer(t, 3, func(ctx context.Context, lfn string) error {
		started <- lfn
		<-release
		return nil
	})
	if !r.Add("f1") {
		t.Fatal("first Add(f1) = false")
	}
	<-started // f1 in flight
	if r.Add("f1") {
		t.Fatal("Add of in-flight f1 = true, want coalesced")
	}
	if !r.Add("f2") || r.Add("f2") {
		t.Fatal("f2 queue/dedup behaved wrong")
	}
	close(release)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := r.Quiesce(ctx); err != nil {
		t.Fatalf("Quiesce: %v", err)
	}
	<-started // f2 ran too
	if got := m.RepairSuccess.Value(); got != 2 {
		t.Fatalf("repair_success = %d, want 2", got)
	}
	if got := m.RepairFailure.Value(); got != 0 {
		t.Fatalf("repair_failure = %d, want 0", got)
	}
	// A completed file can be queued again.
	if !r.Add("f1") {
		t.Fatal("re-Add of completed f1 = false")
	}
	if err := r.Quiesce(ctx); err != nil {
		t.Fatalf("Quiesce 2: %v", err)
	}
}

func TestRepairerRetryThenAbandon(t *testing.T) {
	calls := 0
	done := make(chan struct{})
	r, m := newTestRepairer(t, 3, func(ctx context.Context, lfn string) error {
		calls++
		if calls == 3 {
			defer close(done)
		}
		return errors.New("still broken")
	})
	r.Add("bad")
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("repair attempts never exhausted")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := r.Quiesce(ctx); err != nil {
		t.Fatalf("Quiesce: %v", err)
	}
	if calls != 3 {
		t.Fatalf("attempts = %d, want 3", calls)
	}
	if got := m.RepairAttempts.Value(); got != 3 {
		t.Fatalf("repair_attempts = %d, want 3", got)
	}
	if got := m.RepairFailure.Value(); got != 1 {
		t.Fatalf("repair_failure = %d, want 1", got)
	}
	// Abandonment clears the dedup entry: the next round may re-queue.
	if !r.Add("bad") {
		t.Fatal("re-Add of abandoned file = false")
	}
}

// TestRepairerReconstructFirst: a successful local reconstruction repairs
// the file without ever invoking the WAN pull; a declined reconstruction
// (no sidecar, too damaged) falls through to Do on the same attempt.
func TestRepairerReconstructFirst(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	m := NewMetrics(obs.NewRegistry())
	var pulls, rebuilds int
	r := NewRepairer(ctx, RepairConfig{
		Do: func(ctx context.Context, lfn string) error {
			pulls++
			return nil
		},
		Reconstruct: func(ctx context.Context, lfn string) (bool, error) {
			rebuilds++
			return lfn == "local.fix", nil
		},
		Policy:  fastPolicy(3),
		Metrics: m,
	})
	t.Cleanup(func() { cancel(); r.Close() })

	qctx, qcancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer qcancel()
	r.Add("local.fix")
	if err := r.Quiesce(qctx); err != nil {
		t.Fatalf("Quiesce: %v", err)
	}
	if pulls != 0 || rebuilds != 1 {
		t.Fatalf("after reconstructable repair: pulls=%d rebuilds=%d, want 0/1", pulls, rebuilds)
	}
	r.Add("wan.only")
	if err := r.Quiesce(qctx); err != nil {
		t.Fatalf("Quiesce: %v", err)
	}
	if pulls != 1 || rebuilds != 2 {
		t.Fatalf("after fallback repair: pulls=%d rebuilds=%d, want 1/2", pulls, rebuilds)
	}
	if got := m.RepairSuccess.Value(); got != 2 {
		t.Fatalf("repair_success = %d, want 2", got)
	}
	if got := m.RepairAttempts.Value(); got != 2 {
		t.Fatalf("repair_attempts = %d, want 2", got)
	}
}

func TestRepairerShutdownNotAVerdict(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	m := NewMetrics(obs.NewRegistry())
	started := make(chan struct{})
	r := NewRepairer(ctx, RepairConfig{
		Do: func(c context.Context, lfn string) error {
			close(started)
			<-c.Done()
			return c.Err()
		},
		Policy:  fastPolicy(5),
		Metrics: m,
	})
	r.Add("f")
	<-started
	cancel()
	r.Close()
	if got := m.RepairFailure.Value(); got != 0 {
		t.Fatalf("repair_failure after shutdown = %d, want 0", got)
	}
	if got := m.RepairSuccess.Value(); got != 0 {
		t.Fatalf("repair_success after shutdown = %d, want 0", got)
	}
}

type fakeOps struct {
	scrubs chan struct{}
	aes    chan struct{}
}

func (f *fakeOps) ScrubPass(ctx context.Context) (Report, error) {
	select {
	case f.scrubs <- struct{}{}:
	default:
	}
	return Report{}, nil
}

func (f *fakeOps) AntiEntropyPass(ctx context.Context) (ExchangeReport, error) {
	select {
	case f.aes <- struct{}{}:
	default:
	}
	return ExchangeReport{}, nil
}

func TestDaemonTicksAndStops(t *testing.T) {
	ops := &fakeOps{scrubs: make(chan struct{}, 1), aes: make(chan struct{}, 1)}
	d := NewDaemon(context.Background(), DaemonConfig{
		ScrubEvery:       5 * time.Millisecond,
		AntiEntropyEvery: 5 * time.Millisecond,
	}, ops, nil)
	waitTick := func(ch chan struct{}, what string) {
		select {
		case <-ch:
		case <-time.After(5 * time.Second):
			t.Fatalf("%s never ticked", what)
		}
	}
	waitTick(ops.scrubs, "scrub")
	waitTick(ops.aes, "anti-entropy")
	d.Close()
}

func TestDaemonDisabledLoops(t *testing.T) {
	ops := &fakeOps{scrubs: make(chan struct{}, 1), aes: make(chan struct{}, 1)}
	d := NewDaemon(context.Background(), DaemonConfig{}, ops, nil)
	select {
	case <-ops.scrubs:
		t.Fatal("disabled scrub loop ticked")
	case <-time.After(30 * time.Millisecond):
	}
	d.Close()
}
