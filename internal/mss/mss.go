// Package mss simulates the Mass Storage System environment of Section 4.4:
// files live permanently on tape (HPSS in the paper) and move on demand to
// a disk pool that acts as "a data transfer cache for the Grid". GDMP
// triggers file staging explicitly, because the MSS is shared with other
// administrative domains and its internal cache cannot be managed by the
// Grid; the disk pool is the only storage the replication machinery touches
// directly.
//
// The package provides:
//
//   - a tape library with configurable mount latency and sequential drain
//     rate (so staging cost is realistic: seconds of mount plus size/rate);
//   - a disk pool with bounded capacity, pinning (files in active transfer
//     cannot be evicted), LRU or FIFO eviction for the ablation benches,
//     and explicit space reservation — the allocate_storage(datasize) API
//     the paper cites from [FRS00] as the natural extension point;
//   - the StorageManager interface, the package's HRM analogue: "a common
//     interface to be used to access different Mass Storage Systems".
//
// Physical bytes are kept on the local filesystem (tape directory and pool
// directory), so staged files are ordinary files a GridFTP server can
// serve, exactly as in the paper's deployment.
package mss

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"gdmp/internal/obs"
)

// sleepCtx waits for d or until ctx is done, so the simulated tape-drive
// delays do not outlive a canceled stage request.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// StorageManager is the HRM-style uniform interface GDMP plugs into.
type StorageManager interface {
	// Stage ensures the named file is on disk, staging from tape if
	// necessary, and returns its disk path with the file pinned. Callers
	// must Release the file when their transfer completes.
	Stage(name string) (string, error)

	// Release unpins a previously staged file.
	Release(name string)

	// OnDisk reports whether the file is currently in the disk pool.
	OnDisk(name string) bool

	// Archive copies a disk-pool file to tape for permanent storage.
	Archive(name string) error

	// Reserve sets aside capacity ahead of an incoming transfer and
	// returns a release function. It fails if the space cannot be freed.
	Reserve(size int64) (func(), error)
}

// EvictionPolicy selects which unpinned pool entry is evicted first.
type EvictionPolicy int

const (
	// LRU evicts the least recently used file (the default).
	LRU EvictionPolicy = iota
	// FIFO evicts the oldest-staged file regardless of use.
	FIFO
)

// Errors returned by the MSS.
var (
	ErrNotOnTape   = errors.New("mss: file not in tape library")
	ErrNoSpace     = errors.New("mss: disk pool full and nothing evictable")
	ErrNotStaged   = errors.New("mss: file not on disk")
	ErrBadCapacity = errors.New("mss: pool capacity must be positive")
)

// Config describes one site's storage hierarchy.
type Config struct {
	// TapeDir holds the permanent tape-resident copies.
	TapeDir string

	// PoolDir is the disk pool the Grid transfers from and to.
	PoolDir string

	// PoolCapacity is the pool size in bytes.
	PoolCapacity int64

	// MountLatency is charged once per stage operation (tape mount and
	// seek; minutes on real silos, milliseconds in tests).
	MountLatency time.Duration

	// TapeRateMBps is the sequential tape read rate; staging a file costs
	// size / rate in wall-clock time. Zero disables the charge.
	TapeRateMBps float64

	// Policy selects the eviction order.
	Policy EvictionPolicy
}

// Stats counts MSS activity.
type Stats struct {
	Hits        int   // stage requests satisfied from the pool
	Misses      int   // stage requests that went to tape
	Evictions   int   // files evicted from the pool
	BytesStaged int64 // bytes moved tape -> disk
	StageTime   time.Duration
}

// poolEntry tracks one disk-pool resident file.
type poolEntry struct {
	name       string
	size       int64
	pins       int
	protected  bool      // producer original: never evicted
	attachedTo string    // data entry this one rides with (parity sidecar)
	staged     time.Time // for FIFO
	lru        *list.Element
}

// MSS is the simulated hierarchical storage system at one site.
type MSS struct {
	cfg Config

	mu       sync.Mutex
	entries  map[string]*poolEntry
	lruList  *list.List // front = most recently used
	used     int64
	reserved int64
	stats    Stats
	onEvict  func(name string, size int64)
	met      *obs.PoolMetrics
}

// New creates an MSS over the configured directories, creating them if
// needed.
func New(cfg Config) (*MSS, error) {
	if cfg.PoolCapacity <= 0 {
		return nil, ErrBadCapacity
	}
	if cfg.TapeDir == "" || cfg.PoolDir == "" {
		return nil, errors.New("mss: TapeDir and PoolDir must be set")
	}
	for _, dir := range []string{cfg.TapeDir, cfg.PoolDir} {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("mss: create %s: %w", dir, err)
		}
	}
	return &MSS{
		cfg:     cfg,
		entries: make(map[string]*poolEntry),
		lruList: list.New(),
	}, nil
}

// safeJoin resolves a file name inside dir, rejecting escapes.
func safeJoin(dir, name string) (string, error) {
	clean := filepath.Clean("/" + filepath.ToSlash(name))
	if clean == "/" {
		return "", errors.New("mss: empty name")
	}
	return filepath.Join(dir, filepath.FromSlash(clean)), nil
}

// PutTape writes a file directly into the tape library (experiment setup:
// detector data is archived before the Grid sees it).
func (m *MSS) PutTape(name string, data []byte) error {
	p, err := safeJoin(m.cfg.TapeDir, name)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return err
	}
	return os.WriteFile(p, data, 0o644)
}

// TapeSize returns the size of a tape-resident file.
func (m *MSS) TapeSize(name string) (int64, error) {
	p, err := safeJoin(m.cfg.TapeDir, name)
	if err != nil {
		return 0, err
	}
	info, err := os.Stat(p)
	if err != nil {
		return 0, ErrNotOnTape
	}
	return info.Size(), nil
}

// SetOnEvict installs a callback invoked once per evicted file, after the
// pool lock is released, with the pool-relative name and size of the
// victim. The replication core uses it to retire the evicted replica's
// catalog entries; the bytes are already gone when it runs, and the
// callback may call back into the pool.
func (m *MSS) SetOnEvict(fn func(name string, size int64)) {
	m.mu.Lock()
	m.onEvict = fn
	m.mu.Unlock()
}

// SetMetrics points the pool at a gdmp_pool_* metric family and primes
// the capacity and occupancy gauges.
func (m *MSS) SetMetrics(pm *obs.PoolMetrics) {
	m.mu.Lock()
	m.met = pm
	if pm != nil {
		pm.Capacity.Set(m.cfg.PoolCapacity)
	}
	m.gaugesLocked()
	m.mu.Unlock()
}

// Capacity returns the configured pool size in bytes.
func (m *MSS) Capacity() int64 { return m.cfg.PoolCapacity }

// Protect marks a pool entry as never evictable, regardless of pins — the
// treatment producer originals get, so cache pressure from pulled
// replicas cannot push locally produced data out of the pool.
func (m *MSS) Protect(name string) {
	m.mu.Lock()
	if e, ok := m.entries[name]; ok {
		e.protected = true
	}
	m.mu.Unlock()
}

// Attach binds an auxiliary pool file (a parity sidecar) to the data file
// it describes. The attachment still counts against pool capacity, but it
// is never chosen as an eviction victim on its own, and when its data
// file leaves the pool — evicted or dropped — the attachment's bytes and
// accounting go with it. Unknown names are ignored.
func (m *MSS) Attach(dataName, attachName string) {
	m.mu.Lock()
	if e, ok := m.entries[attachName]; ok {
		e.attachedTo = dataName
	}
	m.mu.Unlock()
}

// gaugesLocked refreshes the occupancy gauges; the caller holds m.mu.
func (m *MSS) gaugesLocked() {
	if m.met == nil {
		return
	}
	m.met.Occupancy.Set(m.used)
	m.met.Reserved.Set(m.reserved)
}

// NoteAccess records a pool-cache access the MSS did not itself mediate:
// hit reports whether the requested replica was already pool-resident,
// and a miss carries the latency of the fetch that brought the bytes in
// (the WAN pull). The replication core calls this on its Get path so the
// pool hit-rate covers remote pulls as well as tape stages.
func (m *MSS) NoteAccess(hit bool, d time.Duration) {
	m.mu.Lock()
	met := m.met
	if hit {
		m.stats.Hits++
	} else {
		m.stats.Misses++
		m.stats.StageTime += d
	}
	m.mu.Unlock()
	if met != nil {
		if hit {
			met.Hits.Inc()
		} else {
			met.Misses.Inc()
			met.StageSeconds.Observe(d.Seconds())
		}
	}
}

// Touch marks a pool-resident file as recently used without pinning it —
// the recency signal for accesses the MSS does not itself mediate (a Get
// satisfied by a resident replica). Without it every such hit is
// invisible to LRU and the policy degenerates to FIFO.
func (m *MSS) Touch(name string) {
	m.mu.Lock()
	if e, ok := m.entries[name]; ok {
		m.touchLocked(e)
	}
	m.mu.Unlock()
}

// OnDisk reports whether the file is in the pool.
func (m *MSS) OnDisk(name string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.entries[name]
	return ok
}

// DiskPath returns the pool path of a staged file without pinning it.
func (m *MSS) DiskPath(name string) (string, error) {
	m.mu.Lock()
	_, ok := m.entries[name]
	m.mu.Unlock()
	if !ok {
		return "", ErrNotStaged
	}
	return safeJoin(m.cfg.PoolDir, name)
}

// Stage ensures the file is on disk and pins it. By default a file is
// "first looked for on its disk location and if it is not there, it is
// assumed to be available in the Mass Storage System" and staged.
func (m *MSS) Stage(name string) (string, error) {
	return m.StageContext(context.Background(), name)
}

// StageContext is Stage bounded by a context: cancellation interrupts the
// simulated mount and tape-drain waits instead of sleeping them out.
func (m *MSS) StageContext(ctx context.Context, name string) (string, error) {
	m.mu.Lock()
	if e, ok := m.entries[name]; ok {
		// Verify the pool copy really is on disk: metadata can drift if
		// the file was removed behind the pool's back (disk failure,
		// operator cleanup). A vanished file is re-staged from tape.
		p, err := safeJoin(m.cfg.PoolDir, name)
		if err != nil {
			m.mu.Unlock()
			return "", err
		}
		if _, err := os.Stat(p); err == nil {
			e.pins++
			m.touchLocked(e)
			m.stats.Hits++
			if m.met != nil {
				m.met.Hits.Inc()
			}
			m.mu.Unlock()
			return p, nil
		}
		m.lruList.Remove(e.lru)
		delete(m.entries, name)
		m.used -= e.size
	}
	m.stats.Misses++
	if m.met != nil {
		m.met.Misses.Inc()
	}
	m.gaugesLocked()
	m.mu.Unlock()

	size, err := m.TapeSize(name)
	if err != nil {
		return "", err
	}

	// Make room before the slow tape read, holding the reservation so a
	// concurrent stage cannot oversubscribe the pool.
	release, err := m.Reserve(size)
	if err != nil {
		return "", err
	}

	start := time.Now()
	if err := sleepCtx(ctx, m.cfg.MountLatency); err != nil {
		release()
		return "", fmt.Errorf("mss: stage %s: %w", name, err)
	}
	if m.cfg.TapeRateMBps > 0 {
		drain := time.Duration(float64(size) / (m.cfg.TapeRateMBps * 1e6) * float64(time.Second))
		if err := sleepCtx(ctx, drain); err != nil {
			release()
			return "", fmt.Errorf("mss: stage %s: %w", name, err)
		}
	}
	src, err := safeJoin(m.cfg.TapeDir, name)
	if err != nil {
		release()
		return "", err
	}
	dst, err := safeJoin(m.cfg.PoolDir, name)
	if err != nil {
		release()
		return "", err
	}
	if err := copyFile(src, dst); err != nil {
		release()
		return "", fmt.Errorf("mss: stage %s: %w", name, err)
	}

	elapsed := time.Since(start)
	m.mu.Lock()
	met := m.met
	if e, ok := m.entries[name]; ok {
		// A concurrent stage of the same file won the race and owns the
		// pool entry; counting our copy too would double the usage
		// accounting and orphan a recency-list element. Fold into the
		// existing entry: drop our reservation, take our pin on theirs.
		m.reserved -= size
		e.pins++
		m.touchLocked(e)
		m.stats.BytesStaged += size
		m.stats.StageTime += elapsed
		m.gaugesLocked()
		m.mu.Unlock()
		if met != nil {
			met.StageSeconds.Observe(elapsed.Seconds())
		}
		return dst, nil
	}
	// Convert the reservation into real usage; the release closure is
	// deliberately never called on this path.
	m.reserved -= size
	m.used += size
	e := &poolEntry{name: name, size: size, pins: 1, staged: time.Now()}
	e.lru = m.lruList.PushFront(e)
	m.entries[name] = e
	m.stats.BytesStaged += size
	m.stats.StageTime += elapsed
	m.gaugesLocked()
	m.mu.Unlock()
	if met != nil {
		met.StageSeconds.Observe(elapsed.Seconds())
	}
	return dst, nil
}

// Release unpins a staged file, making it evictable again.
func (m *MSS) Release(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e, ok := m.entries[name]; ok && e.pins > 0 {
		e.pins--
	}
}

// AddToPool registers a file written directly into the pool (e.g. a replica
// that just arrived over the WAN). The file must already exist at the pool
// path; the entry starts unpinned.
func (m *MSS) AddToPool(name string) error {
	p, err := safeJoin(m.cfg.PoolDir, name)
	if err != nil {
		return err
	}
	info, err := os.Stat(p)
	if err != nil {
		return fmt.Errorf("mss: add to pool: %w", err)
	}
	m.mu.Lock()
	if _, ok := m.entries[name]; ok {
		m.mu.Unlock()
		return nil
	}
	victims, verr := m.evictLocked(info.Size())
	if verr != nil {
		m.gaugesLocked()
		m.mu.Unlock()
		m.notifyEvicted(victims)
		return verr
	}
	e := &poolEntry{name: name, size: info.Size(), staged: time.Now()}
	e.lru = m.lruList.PushFront(e)
	m.entries[name] = e
	m.used += info.Size()
	m.gaugesLocked()
	m.mu.Unlock()
	m.notifyEvicted(victims)
	return nil
}

// Archive copies a pool file to tape (permanent storage for newly produced
// data).
func (m *MSS) Archive(name string) error {
	src, err := m.DiskPath(name)
	if err != nil {
		return err
	}
	dst, err := safeJoin(m.cfg.TapeDir, name)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return err
	}
	if m.cfg.MountLatency > 0 {
		time.Sleep(m.cfg.MountLatency)
	}
	return copyFile(src, dst)
}

// Reserve sets aside size bytes of pool capacity, evicting unpinned files
// if needed, and returns a function releasing the reservation. This is the
// allocate_storage(datasize) API of Section 4.4.
func (m *MSS) Reserve(size int64) (func(), error) {
	if size < 0 {
		return nil, errors.New("mss: negative reservation")
	}
	m.mu.Lock()
	victims, err := m.evictLocked(size)
	if err != nil {
		m.gaugesLocked()
		m.mu.Unlock()
		// Victims evicted before the failure are really gone; their
		// catalog entries must still be retired.
		m.notifyEvicted(victims)
		return nil, err
	}
	m.reserved += size
	m.gaugesLocked()
	m.mu.Unlock()
	m.notifyEvicted(victims)
	var once sync.Once
	return func() {
		once.Do(func() {
			m.mu.Lock()
			m.reserved -= size
			m.gaugesLocked()
			m.mu.Unlock()
		})
	}, nil
}

// evicted records one eviction for the post-unlock callback.
type evicted struct {
	name string
	size int64
}

// evictLocked frees space until size fits, or fails after evicting
// whatever it could. The victims' bytes are removed here; the caller must
// pass the returned list to notifyEvicted after releasing m.mu, because
// the callback re-enters the replication core, which may call back into
// the pool.
func (m *MSS) evictLocked(size int64) ([]evicted, error) {
	var out []evicted
	for m.used+m.reserved+size > m.cfg.PoolCapacity {
		victim := m.pickVictimLocked()
		if victim == nil {
			return out, fmt.Errorf("%w: need %d, used %d, reserved %d, capacity %d",
				ErrNoSpace, size, m.used, m.reserved, m.cfg.PoolCapacity)
		}
		p, err := safeJoin(m.cfg.PoolDir, victim.name)
		if err == nil {
			os.Remove(p)
		}
		m.lruList.Remove(victim.lru)
		delete(m.entries, victim.name)
		m.used -= victim.size
		m.stats.Evictions++
		if m.met != nil {
			m.met.Evictions.Inc()
		}
		out = append(out, evicted{victim.name, victim.size})
		out = append(out, m.detachLocked(victim.name)...)
	}
	return out, nil
}

// detachLocked removes every entry attached to dataName — the cascade
// half of Attach. Attachment removals free capacity and are reported to
// the eviction callback, but are not counted as cache evictions: they
// are bookkeeping for their data file's departure, not victims.
func (m *MSS) detachLocked(dataName string) []evicted {
	var out []evicted
	for name, e := range m.entries {
		if e.attachedTo != dataName {
			continue
		}
		if p, err := safeJoin(m.cfg.PoolDir, name); err == nil {
			os.Remove(p)
		}
		m.lruList.Remove(e.lru)
		delete(m.entries, name)
		m.used -= e.size
		out = append(out, evicted{name, e.size})
	}
	return out
}

// notifyEvicted runs the eviction callback for each victim, outside m.mu.
func (m *MSS) notifyEvicted(victims []evicted) {
	if len(victims) == 0 {
		return
	}
	m.mu.Lock()
	fn := m.onEvict
	m.mu.Unlock()
	if fn == nil {
		return
	}
	for _, v := range victims {
		fn(v.name, v.size)
	}
}

// pickVictimLocked selects the next unpinned victim per policy.
func (m *MSS) pickVictimLocked() *poolEntry {
	switch m.cfg.Policy {
	case FIFO:
		var oldest *poolEntry
		for _, e := range m.entries {
			if e.pins > 0 || e.protected || e.attachedTo != "" {
				continue
			}
			if oldest == nil || e.staged.Before(oldest.staged) {
				oldest = e
			}
		}
		return oldest
	default: // LRU: scan from the back of the recency list
		for el := m.lruList.Back(); el != nil; el = el.Prev() {
			e := el.Value.(*poolEntry)
			if e.pins == 0 && !e.protected && e.attachedTo == "" {
				return e
			}
		}
		return nil
	}
}

// touchLocked marks an entry as recently used.
func (m *MSS) touchLocked(e *poolEntry) {
	m.lruList.MoveToFront(e.lru)
}

// Drop removes a file from the pool's accounting without touching tape.
// Used when a replica is deliberately deleted from the pool (e.g. an
// object-extraction file removed after its transfer). Attachments bound
// to the dropped file go with it.
func (m *MSS) Drop(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.entries[name]
	if !ok {
		return
	}
	if p, err := safeJoin(m.cfg.PoolDir, name); err == nil {
		os.Remove(p)
	}
	m.lruList.Remove(e.lru)
	delete(m.entries, name)
	m.used -= e.size
	m.detachLocked(name)
	m.gaugesLocked()
}

// Used returns the bytes currently occupied in the pool.
func (m *MSS) Used() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.used
}

// Free returns the unreserved free capacity.
func (m *MSS) Free() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cfg.PoolCapacity - m.used - m.reserved
}

// Stats returns a copy of the activity counters.
func (m *MSS) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// PoolContents lists the staged files, sorted.
func (m *MSS) PoolContents() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.entries))
	for n := range m.entries {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func copyFile(src, dst string) error {
	in, err := os.Open(src)
	if err != nil {
		return err
	}
	defer in.Close()
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return err
	}
	out, err := os.Create(dst)
	if err != nil {
		return err
	}
	if _, err := io.Copy(out, in); err != nil {
		out.Close()
		os.Remove(dst)
		return err
	}
	return out.Close()
}

var _ StorageManager = (*MSS)(nil)
