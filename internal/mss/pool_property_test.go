package mss

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// poolScript drives one MSS through a random stage/release/reserve/evict
// sequence and checks the pool's safety invariants after every step:
// pinned and protected files are never evicted, occupancy never exceeds
// capacity, and the Stats counters reconcile exactly with the operation
// log the script kept on the side.
func poolScript(t *testing.T, seed int64) error {
	const capacity = 1000
	dir, err := os.MkdirTemp("", "mssprop")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	m, err := New(Config{
		TapeDir:      filepath.Join(dir, "tape"),
		PoolDir:      filepath.Join(dir, "pool"),
		PoolCapacity: capacity,
		Policy:       EvictionPolicy(seed % 2), // half the runs LRU, half FIFO
	})
	if err != nil {
		return err
	}

	rng := rand.New(rand.NewSource(seed))
	names := make([]string, 8)
	sizes := make(map[string]int64)
	for i := range names {
		names[i] = fmt.Sprintf("f%d.dat", i)
		sz := int64(50 + rng.Intn(250))
		sizes[names[i]] = sz
		if err := m.PutTape(names[i], make([]byte, sz)); err != nil {
			return err
		}
	}

	// The side model: what the script believes about pins and protection.
	pins := make(map[string]int)
	protected := make(map[string]bool)
	var evictErr error
	evictions := 0
	m.SetOnEvict(func(name string, size int64) {
		evictions++
		if pins[name] > 0 && evictErr == nil {
			evictErr = fmt.Errorf("seed %d: evicted %s while pinned (%d pins)", seed, name, pins[name])
		}
		if protected[name] && evictErr == nil {
			evictErr = fmt.Errorf("seed %d: evicted protected file %s", seed, name)
		}
		delete(protected, name)
		delete(pins, name)
	})

	// Operation log totals the Stats counters must reconcile with.
	stageCalls, noteHits, noteMisses := 0, 0, 0
	var bytesStaged int64
	var held []func() // reservations deliberately kept open
	addSeq := 0

	for step := 0; step < 120; step++ {
		name := names[rng.Intn(len(names))]
		switch rng.Intn(12) {
		case 0, 1, 2, 3: // stage (the common operation)
			onDisk := m.OnDisk(name)
			stageCalls++
			if _, err := m.Stage(name); err == nil {
				pins[name]++
				if !onDisk {
					bytesStaged += sizes[name]
				}
			}
		case 4, 5, 6: // release
			if pins[name] > 0 {
				pins[name]--
			}
			m.Release(name)
		case 7, 8: // reserve; keep some reservations open across steps
			release, err := m.Reserve(int64(rng.Intn(400)))
			if err == nil {
				if rng.Intn(2) == 0 {
					release()
				} else {
					held = append(held, release)
				}
			}
		case 9: // a replica "arrives over the WAN"
			addSeq++
			arrival := fmt.Sprintf("wan%d-%d.dat", seed%1000, addSeq)
			sz := int64(50 + rng.Intn(250))
			p := filepath.Join(dir, "pool", arrival)
			if err := os.WriteFile(p, make([]byte, sz), 0o644); err != nil {
				return err
			}
			if err := m.AddToPool(arrival); err != nil {
				os.Remove(p) // rejected arrival: no entry, no bytes
			} else {
				sizes[arrival] = sz
			}
		case 10: // protect (producer-original treatment)
			if m.OnDisk(name) {
				protected[name] = true
			}
			m.Protect(name)
		case 11: // drop
			m.Drop(name)
			delete(pins, name)
			delete(protected, name)
		}
		if evictErr != nil {
			return evictErr
		}
		if used := m.Used(); used > capacity {
			return fmt.Errorf("seed %d step %d: used %d exceeds capacity %d", seed, step, used, capacity)
		}
		if free := m.Free(); free < 0 {
			return fmt.Errorf("seed %d step %d: negative free space %d", seed, step, free)
		}
	}

	// A few unmediated accesses (the core's Get path) must fold into the
	// same counters.
	for i := 0; i < rng.Intn(5); i++ {
		hit := rng.Intn(2) == 0
		m.NoteAccess(hit, time.Millisecond)
		if hit {
			noteHits++
		} else {
			noteMisses++
		}
	}

	st := m.Stats()
	if st.Hits+st.Misses != stageCalls+noteHits+noteMisses {
		return fmt.Errorf("seed %d: hits %d + misses %d != %d stage calls + %d noted",
			seed, st.Hits, st.Misses, stageCalls, noteHits+noteMisses)
	}
	if st.Evictions != evictions {
		return fmt.Errorf("seed %d: Stats.Evictions %d, callback saw %d", seed, st.Evictions, evictions)
	}
	if st.BytesStaged != bytesStaged {
		return fmt.Errorf("seed %d: BytesStaged %d, log says %d", seed, st.BytesStaged, bytesStaged)
	}

	// Releasing every held reservation restores Free to exactly what the
	// residents leave over: no reservation leaked, none double-counted.
	for _, release := range held {
		release()
	}
	if got, want := m.Free(), int64(capacity)-m.Used(); got != want {
		return fmt.Errorf("seed %d: free %d after releasing all reservations, want %d", seed, got, want)
	}
	return nil
}

func TestPoolInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		if err := poolScript(t, seed); err != nil {
			t.Log(err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// A stage that fails after Reserve must put the reserved capacity back;
// otherwise every canceled tape mount permanently shrinks the pool.
func TestStageFailureReleasesReservation(t *testing.T) {
	dir := t.TempDir()
	m, err := New(Config{
		TapeDir:      filepath.Join(dir, "tape"),
		PoolDir:      filepath.Join(dir, "pool"),
		PoolCapacity: 1000,
		MountLatency: time.Second, // far longer than the context allows
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.PutTape("slow.dat", make([]byte, 400)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := m.StageContext(ctx, "slow.dat"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("stage: got %v, want deadline exceeded", err)
	}
	if got := m.Free(); got != 1000 {
		t.Fatalf("free = %d after failed stage, want 1000 (reservation leaked)", got)
	}
	if m.OnDisk("slow.dat") {
		t.Fatal("failed stage left an entry in the pool")
	}
}

// Two concurrent stages of the same file must account its bytes once: the
// loser folds into the winner's entry instead of double-counting usage.
func TestConcurrentDuplicateStageAccounting(t *testing.T) {
	dir := t.TempDir()
	m, err := New(Config{
		TapeDir: filepath.Join(dir, "tape"),
		PoolDir: filepath.Join(dir, "pool"),
		// Room for every racer's reservation at once: the race being
		// tested is in the accounting, not in eviction pressure.
		PoolCapacity: 2000,
		MountLatency: 20 * time.Millisecond, // wide race window
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.PutTape("dup.dat", make([]byte, 300)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := m.Stage("dup.dat"); err != nil {
				t.Errorf("stage: %v", err)
			}
		}()
	}
	wg.Wait()
	if got := m.Used(); got != 300 {
		t.Fatalf("used = %d after duplicate stages, want 300", got)
	}
	if got := len(m.PoolContents()); got != 1 {
		t.Fatalf("%d pool entries, want 1", got)
	}
	// All four stages pinned the one entry; releasing them all makes it
	// evictable again.
	for i := 0; i < 4; i++ {
		m.Release("dup.dat")
	}
	if _, err := m.Reserve(1800); err != nil {
		t.Fatalf("reserve after releases: %v (entry still pinned?)", err)
	}
	if m.OnDisk("dup.dat") {
		t.Fatal("dup.dat not evicted by the reservation")
	}
}
