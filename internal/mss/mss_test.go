package mss

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func newMSS(t *testing.T, capacity int64, policy EvictionPolicy) *MSS {
	t.Helper()
	dir := t.TempDir()
	m, err := New(Config{
		TapeDir:      filepath.Join(dir, "tape"),
		PoolDir:      filepath.Join(dir, "pool"),
		PoolCapacity: capacity,
		Policy:       policy,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func putTape(t *testing.T, m *MSS, name string, size int) []byte {
	t.Helper()
	data := bytes.Repeat([]byte{byte(len(name))}, size)
	if err := m.PutTape(name, data); err != nil {
		t.Fatal(err)
	}
	return data
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{TapeDir: "a", PoolDir: "b", PoolCapacity: 0}); !errors.Is(err, ErrBadCapacity) {
		t.Errorf("zero capacity: %v", err)
	}
	if _, err := New(Config{PoolCapacity: 10}); err == nil {
		t.Error("missing dirs accepted")
	}
}

func TestStageFromTape(t *testing.T) {
	m := newMSS(t, 1<<20, LRU)
	want := putTape(t, m, "run1.db", 1000)
	if m.OnDisk("run1.db") {
		t.Fatal("file on disk before staging")
	}
	path, err := m.Stage("run1.db")
	if err != nil {
		t.Fatalf("Stage: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("staged content mismatch")
	}
	if !m.OnDisk("run1.db") {
		t.Fatal("file not recorded on disk")
	}
	st := m.Stats()
	if st.Misses != 1 || st.Hits != 0 || st.BytesStaged != 1000 {
		t.Fatalf("stats = %+v", st)
	}
	// Second stage is a cache hit.
	if _, err := m.Stage("run1.db"); err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.Hits != 1 {
		t.Fatalf("stats after hit = %+v", st)
	}
	m.Release("run1.db")
	m.Release("run1.db")
}

func TestStageUnknownFile(t *testing.T) {
	m := newMSS(t, 1<<20, LRU)
	if _, err := m.Stage("ghost.db"); !errors.Is(err, ErrNotOnTape) {
		t.Fatalf("Stage(ghost): %v", err)
	}
}

func TestEvictionLRU(t *testing.T) {
	m := newMSS(t, 2500, LRU)
	putTape(t, m, "a", 1000)
	putTape(t, m, "b", 1000)
	putTape(t, m, "c", 1000)

	for _, n := range []string{"a", "b"} {
		if _, err := m.Stage(n); err != nil {
			t.Fatal(err)
		}
		m.Release(n)
	}
	// Touch "a" so "b" becomes the LRU victim.
	if _, err := m.Stage("a"); err != nil {
		t.Fatal(err)
	}
	m.Release("a")
	if _, err := m.Stage("c"); err != nil {
		t.Fatal(err)
	}
	m.Release("c")
	if m.OnDisk("b") {
		t.Fatal("LRU should have evicted b")
	}
	if !m.OnDisk("a") || !m.OnDisk("c") {
		t.Fatalf("pool contents = %v", m.PoolContents())
	}
	if st := m.Stats(); st.Evictions != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestEvictionFIFO(t *testing.T) {
	m := newMSS(t, 2500, FIFO)
	putTape(t, m, "a", 1000)
	putTape(t, m, "b", 1000)
	putTape(t, m, "c", 1000)
	for _, n := range []string{"a", "b"} {
		if _, err := m.Stage(n); err != nil {
			t.Fatal(err)
		}
		m.Release(n)
		time.Sleep(time.Millisecond) // order FIFO timestamps
	}
	// Touching "a" does NOT save it under FIFO.
	if _, err := m.Stage("a"); err != nil {
		t.Fatal(err)
	}
	m.Release("a")
	if _, err := m.Stage("c"); err != nil {
		t.Fatal(err)
	}
	m.Release("c")
	if m.OnDisk("a") {
		t.Fatal("FIFO should have evicted a (oldest staged)")
	}
	if !m.OnDisk("b") || !m.OnDisk("c") {
		t.Fatalf("pool contents = %v", m.PoolContents())
	}
}

func TestPinnedFilesSurviveEviction(t *testing.T) {
	m := newMSS(t, 2500, LRU)
	putTape(t, m, "pinned", 2000)
	putTape(t, m, "new", 1000)
	if _, err := m.Stage("pinned"); err != nil {
		t.Fatal(err)
	}
	// "pinned" is still pinned; staging "new" (1000 bytes into 500 free)
	// must fail rather than evict it.
	if _, err := m.Stage("new"); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("Stage over pinned file: %v", err)
	}
	m.Release("pinned")
	if _, err := m.Stage("new"); err != nil {
		t.Fatalf("Stage after release: %v", err)
	}
	if m.OnDisk("pinned") {
		t.Fatal("released file should have been evicted")
	}
}

func TestReserveAndRelease(t *testing.T) {
	m := newMSS(t, 1000, LRU)
	release, err := m.Reserve(800)
	if err != nil {
		t.Fatal(err)
	}
	if m.Free() != 200 {
		t.Fatalf("Free = %d", m.Free())
	}
	if _, err := m.Reserve(300); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("over-reserve: %v", err)
	}
	release()
	release() // idempotent
	if m.Free() != 1000 {
		t.Fatalf("Free after release = %d", m.Free())
	}
	if _, err := m.Reserve(-1); err == nil {
		t.Fatal("negative reservation accepted")
	}
}

func TestAddToPoolAndArchive(t *testing.T) {
	m := newMSS(t, 10_000, LRU)
	// A replica arrives over the WAN directly into the pool.
	poolPath := filepath.Join(filepath.Dir(mustDiskDir(t, m)), "pool", "arrived.db")
	if err := os.MkdirAll(filepath.Dir(poolPath), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(poolPath, []byte("replica-bytes"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := m.AddToPool("arrived.db"); err != nil {
		t.Fatalf("AddToPool: %v", err)
	}
	if !m.OnDisk("arrived.db") {
		t.Fatal("AddToPool did not register the file")
	}
	if err := m.AddToPool("arrived.db"); err != nil {
		t.Fatalf("idempotent AddToPool: %v", err)
	}
	if err := m.AddToPool("never-written"); err == nil {
		t.Fatal("AddToPool of missing file accepted")
	}
	// Archive it to tape, then evict and re-stage.
	if err := m.Archive("arrived.db"); err != nil {
		t.Fatalf("Archive: %v", err)
	}
	if _, err := m.TapeSize("arrived.db"); err != nil {
		t.Fatalf("archived file not on tape: %v", err)
	}
}

func mustDiskDir(t *testing.T, m *MSS) string {
	t.Helper()
	return m.cfg.PoolDir
}

func TestStageTimingCharges(t *testing.T) {
	dir := t.TempDir()
	m, err := New(Config{
		TapeDir:      filepath.Join(dir, "tape"),
		PoolDir:      filepath.Join(dir, "pool"),
		PoolCapacity: 1 << 20,
		MountLatency: 50 * time.Millisecond,
		TapeRateMBps: 10, // 100 KB costs 10 ms
	})
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 100_000)
	if err := m.PutTape("slow.db", data); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := m.Stage("slow.db"); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if elapsed < 55*time.Millisecond {
		t.Fatalf("stage took %v, expected mount latency + drain time", elapsed)
	}
	m.Release("slow.db")
	// A warm hit is fast.
	start = time.Now()
	if _, err := m.Stage("slow.db"); err != nil {
		t.Fatal(err)
	}
	if warm := time.Since(start); warm > 20*time.Millisecond {
		t.Fatalf("warm stage took %v", warm)
	}
	m.Release("slow.db")
}

func TestConcurrentStaging(t *testing.T) {
	m := newMSS(t, 1<<22, LRU)
	for i := 0; i < 10; i++ {
		putTape(t, m, fmt.Sprintf("f%d", i), 10_000)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 40)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				name := fmt.Sprintf("f%d", i)
				p, err := m.Stage(name)
				if err != nil {
					errs <- err
					return
				}
				if _, err := os.Stat(p); err != nil {
					errs <- err
					return
				}
				m.Release(name)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if m.Used() > 1<<22 {
		t.Fatalf("pool over capacity: %d", m.Used())
	}
}

func TestPathEscapesRejected(t *testing.T) {
	m := newMSS(t, 1000, LRU)
	if err := m.PutTape("", nil); err == nil {
		t.Error("empty name accepted")
	}
	// Escaping names are confined within the tape dir by cleaning.
	if err := m.PutTape("../outside.db", []byte("x")); err != nil {
		t.Fatalf("PutTape(../outside.db): %v", err)
	}
	if _, err := os.Stat(filepath.Join(m.cfg.TapeDir, "outside.db")); err != nil {
		t.Fatal("cleaned path not inside tape dir")
	}
	parent := filepath.Dir(m.cfg.TapeDir)
	if _, err := os.Stat(filepath.Join(parent, "outside.db")); err == nil {
		t.Fatal("path escaped the tape dir")
	}
}
