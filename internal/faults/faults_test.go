package faults

import (
	"bytes"
	"errors"
	"io"
	"net"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"gdmp/internal/obs"
)

// echoServer accepts connections and echoes whatever it reads.
func echoServer(t *testing.T) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer c.Close()
				io.Copy(c, c)
			}()
		}
	}()
	return ln.Addr().String(), func() { ln.Close(); wg.Wait() }
}

func TestDialRefusal(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	reg := obs.NewRegistry()
	in := New(1, func(c ConnInfo) Plan {
		if c.AddrSeq == 0 {
			return Plan{RefuseDial: true}
		}
		return Plan{}
	}, WithMetrics(reg))
	dial := in.Dialer(nil)

	if _, err := dial("tcp", addr); !errors.Is(err, ErrDialRefused) || !errors.Is(err, ErrInjected) {
		t.Fatalf("first dial: want ErrDialRefused, got %v", err)
	}
	c, err := dial("tcp", addr)
	if err != nil {
		t.Fatalf("second dial: %v", err)
	}
	c.Close()
	if got := in.Injected(KindDialRefused); got != 1 {
		t.Fatalf("refusals = %d", got)
	}
	if !strings.Contains(reg.Text(), `gdmp_faults_injected_total{kind="dial_refused"} 1`) {
		t.Fatalf("metrics missing refusal:\n%s", reg.Text())
	}
}

func TestMidStreamResetAfterExactBytes(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	in := New(1, func(ConnInfo) Plan { return Plan{ResetAfterBytes: 10} })
	c, err := in.Dialer(nil)("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// 6 bytes out; 4 more may cross (echoed back) before the reset.
	if _, err := c.Write([]byte("abcdef")); err != nil {
		t.Fatalf("first write: %v", err)
	}
	buf := make([]byte, 16)
	n, err := c.Read(buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if n != 4 {
		t.Fatalf("read %d bytes past the cap, want 4", n)
	}
	// The next operation must observe the reset.
	if _, err := c.Read(buf); !errors.Is(err, ErrReset) {
		t.Fatalf("want ErrReset, got %v", err)
	}
	if in.Injected(KindReset) != 1 {
		t.Fatalf("resets = %d", in.Injected(KindReset))
	}
}

func TestResetDuringWrite(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	in := New(1, func(ConnInfo) Plan { return Plan{ResetAfterBytes: 5} })
	c, err := in.Dialer(nil)("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	n, err := c.Write([]byte("0123456789"))
	if !errors.Is(err, ErrReset) {
		t.Fatalf("want ErrReset, got n=%d err=%v", n, err)
	}
	if n != 5 {
		t.Fatalf("wrote %d bytes before reset, want 5", n)
	}
}

func TestPartialWrite(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	in := New(1, func(ConnInfo) Plan { return Plan{MaxWriteBytes: 3} })
	c, err := in.Dialer(nil)("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	n, err := c.Write([]byte("hello!"))
	if !errors.Is(err, ErrPartialWrite) || n != 3 {
		t.Fatalf("want 3-byte partial write, got n=%d err=%v", n, err)
	}
	// Only the first oversized write is truncated; the bytes that made it
	// through are really on the wire.
	buf := make([]byte, 3)
	if _, err := io.ReadFull(c, buf); err != nil || !bytes.Equal(buf, []byte("hel")) {
		t.Fatalf("echo after partial write: %q, %v", buf, err)
	}
	if _, err := c.Write([]byte("again")); err != nil {
		t.Fatalf("second write should pass: %v", err)
	}
	if in.Injected(KindPartialWrite) != 1 {
		t.Fatalf("partial writes = %d", in.Injected(KindPartialWrite))
	}
}

func TestLatencyInjection(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	in := New(1, func(ConnInfo) Plan { return Plan{Latency: 30 * time.Millisecond} })
	c, err := in.Dialer(nil)("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Write([]byte("x"))
	start := time.Now()
	buf := make([]byte, 1)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("read returned in %v, latency not injected", d)
	}
	if in.Injected(KindLatency) != 1 {
		t.Fatalf("latency injections = %d", in.Injected(KindLatency))
	}
}

func TestStallHonorsDeadline(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	in := New(1, func(ConnInfo) Plan {
		return Plan{StallAfterBytes: 1, StallFor: 10 * time.Second}
	})
	c, err := in.Dialer(nil)("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(50 * time.Millisecond))
	start := time.Now()
	c.Write([]byte("x")) // crosses the stall threshold
	buf := make([]byte, 1)
	_, rerr := c.Read(buf)
	elapsed := time.Since(start)
	// The wedge must not outlive the deadline by much, and the post-stall
	// read must surface a timeout.
	if elapsed > 2*time.Second {
		t.Fatalf("stall ignored the deadline: %v", elapsed)
	}
	var ne net.Error
	if rerr != nil && !(errors.As(rerr, &ne) && ne.Timeout()) {
		t.Fatalf("want timeout after stall, got %v", rerr)
	}
	if in.Injected(KindStall) != 1 {
		t.Fatalf("stalls = %d", in.Injected(KindStall))
	}
}

func TestListenerWrapAndOrdinals(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var infos []ConnInfo
	var mu sync.Mutex
	in := New(7, func(c ConnInfo) Plan {
		mu.Lock()
		infos = append(infos, c)
		mu.Unlock()
		if c.Seq == 0 {
			return Plan{RefuseDial: true} // first accept is torn down
		}
		return Plan{}
	})
	wrapped := in.Listener(ln)
	defer wrapped.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		c, err := wrapped.Accept() // serves the *second* dial
		if err != nil {
			t.Error(err)
			return
		}
		c.Write([]byte("ok"))
		c.Close()
	}()

	// First dial connects at TCP level but is immediately closed.
	c1, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	buf := make([]byte, 2)
	if _, err := io.ReadFull(c2, buf); err != nil || string(buf) != "ok" {
		t.Fatalf("second dial not served: %q, %v", buf, err)
	}
	<-done

	mu.Lock()
	defer mu.Unlock()
	if len(infos) != 2 {
		t.Fatalf("scripted %d connections, want 2", len(infos))
	}
	for i, info := range infos {
		if info.Seq != i || info.AddrSeq != i || !info.Accepted {
			t.Fatalf("info[%d] = %+v", i, info)
		}
	}
	if in.Injected(KindDialRefused) != 1 {
		t.Fatalf("refusals = %d", in.Injected(KindDialRefused))
	}
}

func TestDeterministicRandom(t *testing.T) {
	a, b := New(99, nil), New(99, nil)
	for i := 0; i < 10; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different sequences")
		}
	}
}

func TestZeroPlanPassesThrough(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	in := New(1, nil)
	c, err := in.Dialer(nil)("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, ok := c.(*conn); ok {
		t.Fatal("zero plan should not wrap the connection")
	}
	if in.Connections() != 1 {
		t.Fatalf("connections = %d", in.Connections())
	}
}

func TestPartitionBlackHolesReadsAfterExactBytes(t *testing.T) {
	addr, stop := echoServer(t)
	defer stop()
	reg := obs.NewRegistry()
	in := New(1, func(ConnInfo) Plan { return Partition(10) }, WithMetrics(reg))
	c, err := in.Dialer(nil)("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Writes keep flowing: the partition is asymmetric.
	if _, err := c.Write(bytes.Repeat([]byte("x"), 32)); err != nil {
		t.Fatalf("write across partition: %v", err)
	}
	// Exactly 10 echoed bytes arrive, then the read direction black-holes.
	got := make([]byte, 0, 10)
	buf := make([]byte, 32)
	for len(got) < 10 {
		n, err := c.Read(buf)
		if err != nil {
			t.Fatalf("read before partition threshold: %v (got %d bytes)", err, len(got))
		}
		got = append(got, buf[:n]...)
	}
	if len(got) != 10 {
		t.Fatalf("read %d bytes past the partition threshold", len(got))
	}

	// A deadline fires even while the link black-holes.
	c.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	start := time.Now()
	n, err := c.Read(buf)
	if n != 0 || !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("black-holed read = (%d, %v), want (0, deadline exceeded)", n, err)
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Fatalf("black-holed read returned too early (%v)", time.Since(start))
	}

	// Closing the connection unblocks a reader wedged in the black hole
	// (this is what a context cancel severing tracked conns relies on).
	c.SetReadDeadline(time.Time{})
	readErr := make(chan error, 1)
	go func() {
		_, err := c.Read(buf)
		readErr <- err
	}()
	time.Sleep(10 * time.Millisecond)
	c.Close()
	select {
	case err := <-readErr:
		if !errors.Is(err, net.ErrClosed) {
			t.Fatalf("read after close = %v, want net.ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("close did not unblock the black-holed reader")
	}

	if got := in.Injected(KindPartition); got != 1 {
		t.Fatalf("partition faults counted = %d, want 1", got)
	}
	if !strings.Contains(reg.Text(), `gdmp_faults_injected_total{kind="partition"} 1`) {
		t.Fatalf("metrics missing partition kind:\n%s", reg.Text())
	}
}

func TestPartitionSwallowsWritesAfterExactBytes(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	received := make(chan []byte, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		b, _ := io.ReadAll(c)
		received <- b
	}()

	in := New(1, func(ConnInfo) Plan {
		return Plan{PartitionWritesAfterBytes: 10}
	})
	c, err := in.Dialer(nil)("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	// 16 bytes written: the first 10 cross, the rest black-hole, yet the
	// writer sees total success (the partitioned peer cannot tell).
	if n, err := c.Write([]byte("0123456789abcdef")); n != 16 || err != nil {
		t.Fatalf("write = (%d, %v), want (16, nil)", n, err)
	}
	if n, err := c.Write([]byte("more")); n != 4 || err != nil {
		t.Fatalf("write after partition = (%d, %v), want (4, nil)", n, err)
	}
	c.Close()
	select {
	case b := <-received:
		if string(b) != "0123456789" {
			t.Fatalf("peer received %q, want exactly the first 10 bytes", b)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("peer never finished reading")
	}
	if got := in.Injected(KindPartition); got != 1 {
		t.Fatalf("partition faults counted = %d, want 1", got)
	}
}

func TestNoSpaceWriterTripsAtLimit(t *testing.T) {
	in := New(7, func(ConnInfo) Plan { return Plan{} }, WithMetrics(obs.NewRegistry()))
	f, err := os.CreateTemp(t.TempDir(), "stage-*")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	w := in.NoSpaceWriter(10)(f)

	if _, err := w.WriteAt([]byte("12345"), 0); err != nil {
		t.Fatalf("write under limit: %v", err)
	}
	// A straddling write persists the part that fits, then fails.
	wrote, err := w.WriteAt([]byte("6789AB"), 5)
	if !errors.Is(err, ErrNoSpace) {
		t.Fatalf("straddling write err = %v, want ErrNoSpace", err)
	}
	if wrote != 5 {
		t.Fatalf("straddling write wrote %d bytes, want 5", wrote)
	}
	// The injected error must classify both as injected and as disk-full.
	if !errors.Is(err, ErrInjected) {
		t.Fatal("ErrNoSpace must wrap ErrInjected")
	}
	if _, err := w.WriteAt([]byte("x"), 12); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("write past limit err = %v, want ErrNoSpace", err)
	}
	if got := in.Injected(KindNoSpace); got != 1 {
		t.Fatalf("Injected(enospc) = %d, want 1 (counted once per tripped writer)", got)
	}
	data, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "123456789A" {
		t.Fatalf("file contents = %q, want exactly the bytes that fit", data)
	}
}
