// Package faults is the repository's fault-injection harness: a
// deterministic, seedable net.Conn / net.Listener / dialer wrapper that
// injects the partial-failure modes that dominate wide-area Data Grid
// operation — added latency, stalled peers, mid-stream connection resets
// after an exact byte count, partial writes, refused dials, and
// asymmetric partitions that black-hole one direction mid-stream while
// the other keeps flowing.
//
// Faults are scripted per connection: an Injector hands every new
// connection (dialed or accepted) to the Script along with a ConnInfo
// describing its global ordinal, its ordinal among connections to the same
// address, and the address itself; the Script returns the Plan of faults
// for that connection. Because ordinals are assigned in creation order and
// the Injector's random source is seeded, a chaos run is replayable from
// its logged seed.
//
// Every injected fault increments gdmp_faults_injected_total{kind} in the
// harness's obs registry and an internal per-kind count readable with
// Injected, so tests can account for injected failures exactly.
package faults

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"sync"
	"syscall"
	"time"

	"gdmp/internal/obs"
)

// MetricsPrefix prefixes the harness's metric family.
const MetricsPrefix = "gdmp_faults"

// Fault kinds, used as the metric label and for Injected accounting.
const (
	KindDialRefused  = "dial_refused"
	KindDialDelay    = "dial_delay"
	KindLatency      = "latency"
	KindReset        = "reset"
	KindStall        = "stall"
	KindPartialWrite = "partial_write"
	KindPartition    = "partition"
	KindNoSpace      = "enospc"
)

// ErrInjected is the root of every error the harness injects; test code
// can errors.Is against it to tell injected failures from real ones.
var ErrInjected = errors.New("faults: injected failure")

// ErrDialRefused is returned for dials refused by a Plan.
var ErrDialRefused = fmt.Errorf("%w: dial refused", ErrInjected)

// ErrReset is returned once a connection's reset threshold has tripped.
var ErrReset = fmt.Errorf("%w: connection reset", ErrInjected)

// ErrPartialWrite is returned by a Write truncated by MaxWriteBytes.
var ErrPartialWrite = fmt.Errorf("%w: partial write", ErrInjected)

// ErrNoSpace is returned by a NoSpaceWriter once its byte budget is
// exhausted. It wraps both ErrInjected (so harnesses can tell it from a
// real disk-full) and syscall.ENOSPC (so production error handling that
// classifies disk-full via errors.Is takes the same path either way).
var ErrNoSpace = fmt.Errorf("%w: %w", ErrInjected, syscall.ENOSPC)

// ConnInfo identifies one connection as it is created, so a Script can
// target it deterministically.
type ConnInfo struct {
	// Seq is the connection's 0-based ordinal across the whole Injector,
	// in creation order.
	Seq int

	// AddrSeq is the 0-based ordinal among connections to (or accepted
	// on) the same address.
	AddrSeq int

	// Network and Addr are the dial target, or the listener's own
	// address for accepted connections.
	Network, Addr string

	// Accepted is true for connections from a wrapped listener.
	Accepted bool
}

// Plan scripts the faults injected into a single connection. The zero
// Plan injects nothing.
type Plan struct {
	// RefuseDial fails the dial with ErrDialRefused (for accepted
	// connections: the connection is closed immediately).
	RefuseDial bool

	// DialDelay stalls the dial before it returns.
	DialDelay time.Duration

	// Latency is added to every Read that returns data.
	Latency time.Duration

	// ResetAfterBytes hard-closes the connection after exactly this many
	// bytes have crossed it (reads + writes combined); 0 disables.
	ResetAfterBytes int64

	// StallAfterBytes makes the connection hang for StallFor once this
	// many bytes have crossed it (a wedged-peer emulation; a deadline
	// set on the connection still fires during the stall); 0 disables.
	StallAfterBytes int64
	StallFor        time.Duration

	// MaxWriteBytes truncates the connection's first oversized Write to
	// this many bytes and returns ErrPartialWrite; 0 disables.
	MaxWriteBytes int

	// PartitionReadsAfterBytes emulates an asymmetric network partition:
	// the dial succeeds and the write direction keeps flowing, but once
	// this many bytes have been read, further Reads black-hole — they
	// block indefinitely, returning only when a deadline set on the
	// connection fires or the connection is closed. 0 disables.
	PartitionReadsAfterBytes int64

	// PartitionWritesAfterBytes black-holes the write direction instead:
	// once this many bytes have been written, further Writes report
	// success but the bytes are silently dropped. 0 disables.
	PartitionWritesAfterBytes int64
}

// Partition returns a Plan emulating the classic asymmetric WAN
// partition: the dial succeeds, n bytes arrive, and then the read
// direction black-holes while writes still flow.
func Partition(n int64) Plan {
	return Plan{PartitionReadsAfterBytes: n}
}

// Script decides the Plan for each new connection.
type Script func(c ConnInfo) Plan

// Injector wraps dialers and listeners with scripted faults.
type Injector struct {
	mu       sync.Mutex
	rng      *rand.Rand
	script   Script
	seq      int
	perAddr  map[string]int
	injected map[string]int64

	seed    int64
	metrics *obs.CounterVec
}

// Option customizes New.
type Option func(*Injector)

// WithMetrics registers the injected-fault counters in r instead of
// obs.Default.
func WithMetrics(r *obs.Registry) Option {
	return func(in *Injector) {
		in.metrics = r.CounterVec(MetricsPrefix+"_injected_total",
			"Faults injected by the harness, by kind.", "kind")
	}
}

// New creates an Injector. The seed drives the harness's random source
// (exposed via Float64 for randomized Scripts) and is logged by chaos
// harnesses so failures replay exactly; script may be nil (no faults).
func New(seed int64, script Script, opts ...Option) *Injector {
	if script == nil {
		script = func(ConnInfo) Plan { return Plan{} }
	}
	in := &Injector{
		rng:      rand.New(rand.NewSource(seed)),
		script:   script,
		perAddr:  make(map[string]int),
		injected: make(map[string]int64),
		seed:     seed,
	}
	for _, o := range opts {
		o(in)
	}
	if in.metrics == nil {
		WithMetrics(obs.Default)(in)
	}
	return in
}

// Seed returns the seed the Injector was built with.
func (in *Injector) Seed() int64 { return in.seed }

// Float64 returns a deterministic pseudo-random sample for Scripts that
// randomize fault parameters.
func (in *Injector) Float64() float64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.rng.Float64()
}

// Injected returns how many faults of one kind have been injected so far.
func (in *Injector) Injected(kind string) int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.injected[kind]
}

// Connections returns how many connections the Injector has scripted.
func (in *Injector) Connections() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.seq
}

// NoSpaceWriter returns a staging-writer wrapper that emulates the disk
// filling up mid-stage: writes land normally until the file would grow
// past limit bytes, after which every write fails with ErrNoSpace (a
// write straddling the limit persists the part that fits first, exactly
// like a real ENOSPC). Each tripped writer counts one "enospc" injection.
func (in *Injector) NoSpaceWriter(limit int64) func(io.WriterAt) io.WriterAt {
	return func(w io.WriterAt) io.WriterAt {
		return &noSpaceWriter{in: in, w: w, limit: limit}
	}
}

type noSpaceWriter struct {
	in      *Injector
	w       io.WriterAt
	limit   int64
	mu      sync.Mutex
	tripped bool
}

func (n *noSpaceWriter) WriteAt(p []byte, off int64) (int, error) {
	if off >= n.limit {
		n.trip()
		return 0, ErrNoSpace
	}
	if off+int64(len(p)) > n.limit {
		wrote, err := n.w.WriteAt(p[:n.limit-off], off)
		if err != nil {
			return wrote, err
		}
		n.trip()
		return wrote, ErrNoSpace
	}
	return n.w.WriteAt(p, off)
}

func (n *noSpaceWriter) trip() {
	n.mu.Lock()
	first := !n.tripped
	n.tripped = true
	n.mu.Unlock()
	if first {
		n.in.count(KindNoSpace)
	}
}

func (in *Injector) count(kind string) {
	in.mu.Lock()
	in.injected[kind]++
	in.mu.Unlock()
	in.metrics.WithLabelValues(kind).Inc()
}

// plan assigns ordinals and runs the script for one new connection.
func (in *Injector) plan(network, addr string, accepted bool) Plan {
	in.mu.Lock()
	info := ConnInfo{
		Seq:      in.seq,
		AddrSeq:  in.perAddr[addr],
		Network:  network,
		Addr:     addr,
		Accepted: accepted,
	}
	in.seq++
	in.perAddr[addr]++
	in.mu.Unlock()
	return in.script(info)
}

// DialFunc matches the dialer signature used across the repository.
type DialFunc func(network, addr string) (net.Conn, error)

// Dialer wraps base (net.Dial when nil) so every dialed connection runs
// under the Script.
func (in *Injector) Dialer(base DialFunc) DialFunc {
	if base == nil {
		base = net.Dial
	}
	return func(network, addr string) (net.Conn, error) {
		p := in.plan(network, addr, false)
		if p.DialDelay > 0 {
			in.count(KindDialDelay)
			time.Sleep(p.DialDelay)
		}
		if p.RefuseDial {
			in.count(KindDialRefused)
			return nil, fmt.Errorf("faults: dial %s: %w", addr, ErrDialRefused)
		}
		c, err := base(network, addr)
		if err != nil {
			return nil, err
		}
		return in.wrap(c, p), nil
	}
}

// Listener wraps ln so every accepted connection runs under the Script.
func (in *Injector) Listener(ln net.Listener) net.Listener {
	return &listener{Listener: ln, in: in}
}

type listener struct {
	net.Listener
	in *Injector
}

func (l *listener) Accept() (net.Conn, error) {
	for {
		c, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		p := l.in.plan("tcp", l.Addr().String(), true)
		if p.RefuseDial {
			l.in.count(KindDialRefused)
			c.Close()
			continue
		}
		if p.DialDelay > 0 {
			l.in.count(KindDialDelay)
			time.Sleep(p.DialDelay)
		}
		return l.in.wrap(c, p), nil
	}
}

func (in *Injector) wrap(c net.Conn, p Plan) net.Conn {
	if p == (Plan{}) {
		return c
	}
	return &conn{Conn: c, in: in, plan: p}
}

// conn applies one Plan to a live connection. Byte accounting covers both
// directions, so "reset after N bytes" triggers at the same point whether
// the wrapped side is sending or receiving.
type conn struct {
	net.Conn
	in   *Injector
	plan Plan

	mu           sync.Mutex
	bytes        int64
	readBytes    int64 // read direction only, for partition thresholds
	writeBytes   int64 // write direction only, for partition thresholds
	tripped      bool  // reset threshold crossed
	stalled      bool  // stall already served
	latencyNoted bool
	partialDone  bool
	partitioned  bool // partition fault counted
	closed       bool
	deadline     time.Time
}

// admit returns how many of n bytes may still cross before the reset
// threshold trips, or n when no reset is scripted. Crossing the threshold
// closes the underlying connection.
func (c *conn) admit(n int) (int, error) {
	c.mu.Lock()
	if c.tripped {
		c.mu.Unlock()
		return 0, ErrReset
	}
	if c.plan.ResetAfterBytes <= 0 {
		c.mu.Unlock()
		return n, nil
	}
	left := c.plan.ResetAfterBytes - c.bytes
	if left <= 0 {
		c.tripped = true
		c.mu.Unlock()
		c.in.count(KindReset)
		c.Conn.Close()
		return 0, ErrReset
	}
	if int64(n) > left {
		n = int(left)
	}
	c.mu.Unlock()
	return n, nil
}

// account records n transferred bytes and fires the stall fault when its
// threshold is crossed.
func (c *conn) account(n int) {
	if n <= 0 {
		return
	}
	c.mu.Lock()
	c.bytes += int64(n)
	stall := c.plan.StallAfterBytes > 0 && !c.stalled && c.bytes >= c.plan.StallAfterBytes
	if stall {
		c.stalled = true
	}
	c.mu.Unlock()
	if stall {
		c.in.count(KindStall)
		c.stallWait()
	}
}

// stallWait blocks for StallFor, honoring any deadline set on the
// connection (so a per-operation control deadline still fires while the
// peer appears wedged).
func (c *conn) stallWait() {
	end := time.Now().Add(c.plan.StallFor)
	for {
		now := time.Now()
		if !now.Before(end) {
			return
		}
		c.mu.Lock()
		dl := c.deadline
		c.mu.Unlock()
		if !dl.IsZero() && now.After(dl) {
			return
		}
		step := 2 * time.Millisecond
		if rem := end.Sub(now); rem < step {
			step = rem
		}
		time.Sleep(step)
	}
}

// notePartition counts the partition fault once per connection.
func (c *conn) notePartition() {
	c.mu.Lock()
	first := !c.partitioned
	c.partitioned = true
	c.mu.Unlock()
	if first {
		c.in.count(KindPartition)
	}
}

// blackhole blocks like a partitioned link: nothing ever arrives, and
// the call returns only when a deadline set on the connection fires or
// the connection is closed (a context cancel severing tracked
// connections unblocks a reader wedged here).
func (c *conn) blackhole() error {
	for {
		c.mu.Lock()
		closed, dl := c.closed, c.deadline
		c.mu.Unlock()
		if closed {
			return net.ErrClosed
		}
		if !dl.IsZero() && time.Now().After(dl) {
			return os.ErrDeadlineExceeded
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func (c *conn) Read(p []byte) (int, error) {
	n, err := c.admit(len(p))
	if err != nil {
		return 0, err
	}
	if n == 0 && len(p) > 0 {
		return 0, nil
	}
	if c.plan.PartitionReadsAfterBytes > 0 {
		c.mu.Lock()
		left := c.plan.PartitionReadsAfterBytes - c.readBytes
		c.mu.Unlock()
		if left <= 0 {
			c.notePartition()
			return 0, c.blackhole()
		}
		if int64(n) > left {
			n = int(left)
		}
	}
	if c.plan.Latency > 0 {
		c.mu.Lock()
		first := !c.latencyNoted
		c.latencyNoted = true
		c.mu.Unlock()
		if first {
			c.in.count(KindLatency)
		}
		time.Sleep(c.plan.Latency)
	}
	got, err := c.Conn.Read(p[:n])
	c.mu.Lock()
	c.readBytes += int64(got)
	c.mu.Unlock()
	c.account(got)
	return got, err
}

func (c *conn) Write(p []byte) (int, error) {
	n, err := c.admit(len(p))
	if err != nil {
		return 0, err
	}
	if c.plan.PartitionWritesAfterBytes > 0 {
		c.mu.Lock()
		left := c.plan.PartitionWritesAfterBytes - c.writeBytes
		c.mu.Unlock()
		if left <= 0 {
			// The link swallows the bytes: report success, send nothing.
			c.notePartition()
			return len(p), nil
		}
		if int64(n) > left {
			wrote, err := c.writeReal(p[:int(left)])
			if err != nil {
				return wrote, err
			}
			c.notePartition()
			return len(p), nil
		}
	}
	partial := false
	if c.plan.MaxWriteBytes > 0 && n > c.plan.MaxWriteBytes {
		c.mu.Lock()
		if !c.partialDone {
			c.partialDone = true
			partial = true
			n = c.plan.MaxWriteBytes
		}
		c.mu.Unlock()
	}
	wrote, err := c.writeReal(p[:n])
	if err != nil {
		return wrote, err
	}
	if partial {
		c.in.count(KindPartialWrite)
		return wrote, ErrPartialWrite
	}
	if wrote < len(p) {
		// The reset threshold truncated this write; finishing the rest
		// would cross it, so trip now.
		c.mu.Lock()
		c.tripped = true
		c.mu.Unlock()
		c.in.count(KindReset)
		c.Conn.Close()
		return wrote, ErrReset
	}
	return wrote, nil
}

// writeReal sends bytes on the underlying connection with per-direction
// and combined byte accounting (shared by the normal write path and the
// partition boundary write).
func (c *conn) writeReal(p []byte) (int, error) {
	wrote, err := c.Conn.Write(p)
	c.mu.Lock()
	c.writeBytes += int64(wrote)
	c.mu.Unlock()
	c.account(wrote)
	return wrote, err
}

func (c *conn) Close() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	return c.Conn.Close()
}

func (c *conn) SetDeadline(t time.Time) error {
	c.mu.Lock()
	c.deadline = t
	c.mu.Unlock()
	return c.Conn.SetDeadline(t)
}

func (c *conn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.deadline = t
	c.mu.Unlock()
	return c.Conn.SetReadDeadline(t)
}
