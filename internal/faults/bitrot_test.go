package faults

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func writeBlob(t *testing.T, n int) string {
	t.Helper()
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(i)
	}
	path := filepath.Join(t.TempDir(), "blob")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestFlipBytesDeterministicAndSilent(t *testing.T) {
	path := writeBlob(t, 4096)
	before, _ := os.ReadFile(path)

	offs, err := FlipBytes(path, 42, 3)
	if err != nil {
		t.Fatalf("FlipBytes: %v", err)
	}
	if len(offs) != 3 {
		t.Fatalf("flipped %d offsets, want 3", len(offs))
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before) {
		t.Fatalf("size changed %d -> %d; bit-rot must be silent", len(before), len(after))
	}
	var diff int
	for i := range before {
		if before[i] != after[i] {
			diff++
		}
	}
	if diff != 3 {
		t.Fatalf("%d bytes differ, want exactly 3", diff)
	}

	// Same seed on identical bytes corrupts identically.
	path2 := writeBlob(t, 4096)
	offs2, err := FlipBytes(path2, 42, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(offs, offs2) {
		t.Fatalf("offsets diverged for same seed: %v vs %v", offs, offs2)
	}
	after2, _ := os.ReadFile(path2)
	if !bytes.Equal(after, after2) {
		t.Fatal("same seed produced different corruption")
	}

	// A different seed corrupts differently.
	path3 := writeBlob(t, 4096)
	if _, err := FlipBytes(path3, 43, 3); err != nil {
		t.Fatal(err)
	}
	after3, _ := os.ReadFile(path3)
	if bytes.Equal(after, after3) {
		t.Fatal("different seeds produced identical corruption")
	}
}

func TestFlipBytesEdgeCases(t *testing.T) {
	// n larger than the file clamps to the file size.
	path := writeBlob(t, 2)
	offs, err := FlipBytes(path, 7, 100)
	if err != nil {
		t.Fatalf("FlipBytes on tiny file: %v", err)
	}
	if len(offs) != 2 {
		t.Fatalf("flipped %d offsets, want 2 (clamped)", len(offs))
	}

	// Empty files cannot rot.
	empty := filepath.Join(t.TempDir(), "empty")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := FlipBytes(empty, 7, 1); err == nil {
		t.Fatal("FlipBytes on empty file succeeded, want error")
	}

	if _, err := FlipBytes(filepath.Join(t.TempDir(), "absent"), 7, 1); err == nil {
		t.Fatal("FlipBytes on absent file succeeded, want error")
	}
}

func TestFlipBlocksDamageIsBlockAligned(t *testing.T) {
	const size, bs = 4096, 512
	path := writeBlob(t, size)
	before, _ := os.ReadFile(path)

	damaged, err := FlipBlocks(path, 42, bs, 3)
	if err != nil {
		t.Fatalf("FlipBlocks: %v", err)
	}
	if len(damaged) != 3 {
		t.Fatalf("damaged %d blocks, want 3", len(damaged))
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before) {
		t.Fatalf("size changed %d -> %d; block-rot must be silent", len(before), len(after))
	}

	// Every differing byte must fall inside a reported block, and every
	// reported block must actually differ — the damage budget is exact.
	want := make(map[int]bool, len(damaged))
	for _, b := range damaged {
		want[b] = true
	}
	hit := make(map[int]bool)
	for i := range before {
		if before[i] != after[i] {
			blk := i / bs
			if !want[blk] {
				t.Fatalf("byte %d (block %d) differs outside the reported blocks %v", i, blk, damaged)
			}
			hit[blk] = true
		}
	}
	if len(hit) != len(want) {
		t.Fatalf("damaged blocks %v, but only %v actually differ", damaged, hit)
	}

	// Same seed on identical bytes damages identically.
	path2 := writeBlob(t, size)
	damaged2, err := FlipBlocks(path2, 42, bs, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(damaged, damaged2) {
		t.Fatalf("blocks diverged for same seed: %v vs %v", damaged, damaged2)
	}
	after2, _ := os.ReadFile(path2)
	if !bytes.Equal(after, after2) {
		t.Fatal("same seed produced different corruption")
	}
}

func TestFlipBlocksEdgeCases(t *testing.T) {
	// n larger than the block count clamps; the ragged tail block counts.
	path := writeBlob(t, 1000) // blocks of 512: [0,512) and [512,1000)
	damaged, err := FlipBlocks(path, 7, 512, 10)
	if err != nil {
		t.Fatalf("FlipBlocks: %v", err)
	}
	if len(damaged) != 2 {
		t.Fatalf("damaged %d blocks, want 2 (clamped)", len(damaged))
	}

	if _, err := FlipBlocks(path, 7, 0, 1); err == nil {
		t.Fatal("FlipBlocks with zero block size succeeded, want error")
	}
	empty := filepath.Join(t.TempDir(), "empty")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := FlipBlocks(empty, 7, 512, 1); err == nil {
		t.Fatal("FlipBlocks on empty file succeeded, want error")
	}
}

func TestInjectorFlipBlocksCounts(t *testing.T) {
	in := New(99, nil)
	path := writeBlob(t, 4096)
	if _, err := in.FlipBlocks(path, 1024, 2); err != nil {
		t.Fatalf("Injector.FlipBlocks: %v", err)
	}
	if got := in.Injected(KindBlockRot); got != 1 {
		t.Fatalf("Injected(blockrot) = %d, want 1", got)
	}
}

func TestInjectorFlipBytesCounts(t *testing.T) {
	in := New(99, nil)
	path := writeBlob(t, 1024)
	if _, err := in.FlipBytes(path, 2); err != nil {
		t.Fatalf("Injector.FlipBytes: %v", err)
	}
	if got := in.Injected(KindBitRot); got != 1 {
		t.Fatalf("Injected(bitrot) = %d, want 1", got)
	}
}
