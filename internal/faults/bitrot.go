package faults

import (
	"fmt"
	"math/rand"
	"os"
)

// KindBitRot labels silent on-disk corruption injected by FlipBytes.
const KindBitRot = "bitrot"

// FlipBytes corrupts a landed replica in place: it flips one bit in each
// of n distinct bytes of the file, chosen by a rand source seeded with
// seed. The size and mtime-visible shape of the file are untouched — this
// is the silent bit-rot a scrubber exists to catch, not a truncation a
// size check would see. It returns the byte offsets flipped (sorted by
// pick order) so tests can assert the corruption landed.
//
// Determinism: the same (seed, n, file size) always flips the same
// offsets, so a failing scrub chaos run replays from its logged seed.
func FlipBytes(path string, seed int64, n int) ([]int64, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size == 0 {
		return nil, fmt.Errorf("faults: bitrot: %s is empty", path)
	}
	if int64(n) > size {
		n = int(size)
	}
	rng := rand.New(rand.NewSource(seed))
	picked := make(map[int64]bool, n)
	offsets := make([]int64, 0, n)
	for len(offsets) < n {
		off := rng.Int63n(size)
		if picked[off] {
			continue
		}
		picked[off] = true
		offsets = append(offsets, off)
	}
	one := make([]byte, 1)
	for _, off := range offsets {
		if _, err := f.ReadAt(one, off); err != nil {
			return offsets, err
		}
		one[0] ^= 1 << uint(rng.Intn(8))
		if _, err := f.WriteAt(one, off); err != nil {
			return offsets, err
		}
	}
	if err := f.Sync(); err != nil {
		return offsets, err
	}
	return offsets, nil
}

// KindBlockRot labels block-aligned burst corruption injected by
// FlipBlocks.
const KindBlockRot = "blockrot"

// FlipBlocks corrupts a landed replica in n distinct block-sized bursts:
// the file is viewed as consecutive blockSize-byte regions (the last one
// ragged), n distinct regions are chosen by a rand source seeded with
// seed, and one bit is flipped somewhere inside each. This is the damage
// shape erasure-coded repair is sized against — "at most m damaged
// blocks" — so chaos suites drive the ≤m rebuild path and the >m
// fallback path with exact block budgets instead of hoping scattered
// single-byte flips land in few enough blocks. Returns the damaged block
// indices, sorted by pick order.
//
// Determinism: the same (seed, blockSize, n, file size) always damages
// the same blocks at the same offsets.
func FlipBlocks(path string, seed int64, blockSize int64, n int) ([]int, error) {
	if blockSize <= 0 {
		return nil, fmt.Errorf("faults: blockrot: block size %d", blockSize)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size == 0 {
		return nil, fmt.Errorf("faults: blockrot: %s is empty", path)
	}
	blocks := int((size + blockSize - 1) / blockSize)
	if n > blocks {
		n = blocks
	}
	rng := rand.New(rand.NewSource(seed))
	picked := make(map[int]bool, n)
	damaged := make([]int, 0, n)
	for len(damaged) < n {
		b := rng.Intn(blocks)
		if picked[b] {
			continue
		}
		picked[b] = true
		damaged = append(damaged, b)
	}
	one := make([]byte, 1)
	for _, b := range damaged {
		start := int64(b) * blockSize
		blen := blockSize
		if start+blen > size {
			blen = size - start
		}
		off := start + rng.Int63n(blen)
		if _, err := f.ReadAt(one, off); err != nil {
			return damaged, err
		}
		one[0] ^= 1 << uint(rng.Intn(8))
		if _, err := f.WriteAt(one, off); err != nil {
			return damaged, err
		}
	}
	if err := f.Sync(); err != nil {
		return damaged, err
	}
	return damaged, nil
}

// FlipBlocks is the Injector-bound form of the package-level FlipBlocks,
// seeded from the harness source and counted under
// gdmp_faults_injected_total{kind="blockrot"}.
func (in *Injector) FlipBlocks(path string, blockSize int64, n int) ([]int, error) {
	in.mu.Lock()
	seed := in.rng.Int63()
	in.mu.Unlock()
	blocks, err := FlipBlocks(path, seed, blockSize, n)
	if err == nil {
		in.count(KindBlockRot)
	}
	return blocks, err
}

// FlipBytes is the Injector-bound form of the package-level FlipBytes: it
// derives the corruption seed from the harness's seeded source (keeping
// whole-run replayability from one logged seed) and counts the fault in
// gdmp_faults_injected_total{kind="bitrot"}.
func (in *Injector) FlipBytes(path string, n int) ([]int64, error) {
	in.mu.Lock()
	seed := in.rng.Int63()
	in.mu.Unlock()
	offs, err := FlipBytes(path, seed, n)
	if err == nil {
		in.count(KindBitRot)
	}
	return offs, err
}
