package faults

import (
	"fmt"
	"math/rand"
	"os"
)

// KindBitRot labels silent on-disk corruption injected by FlipBytes.
const KindBitRot = "bitrot"

// FlipBytes corrupts a landed replica in place: it flips one bit in each
// of n distinct bytes of the file, chosen by a rand source seeded with
// seed. The size and mtime-visible shape of the file are untouched — this
// is the silent bit-rot a scrubber exists to catch, not a truncation a
// size check would see. It returns the byte offsets flipped (sorted by
// pick order) so tests can assert the corruption landed.
//
// Determinism: the same (seed, n, file size) always flips the same
// offsets, so a failing scrub chaos run replays from its logged seed.
func FlipBytes(path string, seed int64, n int) ([]int64, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size == 0 {
		return nil, fmt.Errorf("faults: bitrot: %s is empty", path)
	}
	if int64(n) > size {
		n = int(size)
	}
	rng := rand.New(rand.NewSource(seed))
	picked := make(map[int64]bool, n)
	offsets := make([]int64, 0, n)
	for len(offsets) < n {
		off := rng.Int63n(size)
		if picked[off] {
			continue
		}
		picked[off] = true
		offsets = append(offsets, off)
	}
	one := make([]byte, 1)
	for _, off := range offsets {
		if _, err := f.ReadAt(one, off); err != nil {
			return offsets, err
		}
		one[0] ^= 1 << uint(rng.Intn(8))
		if _, err := f.WriteAt(one, off); err != nil {
			return offsets, err
		}
	}
	if err := f.Sync(); err != nil {
		return offsets, err
	}
	return offsets, nil
}

// FlipBytes is the Injector-bound form of the package-level FlipBytes: it
// derives the corruption seed from the harness's seeded source (keeping
// whole-run replayability from one logged seed) and counts the fault in
// gdmp_faults_injected_total{kind="bitrot"}.
func (in *Injector) FlipBytes(path string, n int) ([]int64, error) {
	in.mu.Lock()
	seed := in.rng.Int63()
	in.mu.Unlock()
	offs, err := FlipBytes(path, seed, n)
	if err == nil {
		in.count(KindBitRot)
	}
	return offs, err
}
