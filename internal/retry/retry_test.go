package retry

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"gdmp/internal/obs"
)

// noSleep replaces backoff sleeps and records them.
func noSleep(slept *[]time.Duration) func(context.Context, time.Duration) error {
	return func(_ context.Context, d time.Duration) error {
		*slept = append(*slept, d)
		return nil
	}
}

func TestDoSucceedsFirstAttempt(t *testing.T) {
	var slept []time.Duration
	p := Policy{Attempts: 5, sleep: noSleep(&slept)}
	calls := 0
	if err := p.Do(context.Background(), func(int) error { calls++; return nil }); err != nil {
		t.Fatal(err)
	}
	if calls != 1 || len(slept) != 0 {
		t.Fatalf("calls = %d, sleeps = %v", calls, slept)
	}
}

func TestDoRetriesThenSucceeds(t *testing.T) {
	var slept []time.Duration
	p := Policy{Attempts: 5, Jitter: 0, sleep: noSleep(&slept)}
	calls := 0
	err := p.Do(context.Background(), func(attempt int) error {
		calls++
		if attempt != calls {
			t.Fatalf("attempt %d on call %d", attempt, calls)
		}
		if attempt < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 || len(slept) != 2 {
		t.Fatalf("calls = %d, sleeps = %v", calls, slept)
	}
	if slept[1] <= slept[0] {
		t.Fatalf("backoff did not grow: %v", slept)
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	var slept []time.Duration
	p := Policy{Attempts: 3, sleep: noSleep(&slept)}
	boom := errors.New("boom")
	err := p.Do(context.Background(), func(int) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("want wrapped boom, got %v", err)
	}
	var ex *ExhaustedError
	if !errors.As(err, &ex) || ex.Attempts != 3 || ex.Reason != OutcomeExhausted {
		t.Fatalf("exhausted error = %+v", err)
	}
	if len(slept) != 2 {
		t.Fatalf("sleeps = %v", slept)
	}
}

func TestDoPermanentStopsImmediately(t *testing.T) {
	p := Policy{Attempts: 5}
	calls := 0
	boom := errors.New("fatal")
	err := p.Do(context.Background(), func(int) error { calls++; return Permanent(boom) })
	if calls != 1 {
		t.Fatalf("calls = %d", calls)
	}
	if !errors.Is(err, boom) || !IsPermanent(err) {
		t.Fatalf("err = %v", err)
	}
}

func TestDoCustomClassifier(t *testing.T) {
	p := Policy{
		Attempts:  5,
		Retryable: func(err error) bool { return strings.Contains(err.Error(), "again") },
	}
	calls := 0
	err := p.Do(context.Background(), func(int) error { calls++; return errors.New("nope") })
	if calls != 1 || err == nil {
		t.Fatalf("calls = %d, err = %v", calls, err)
	}
}

func TestDoContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := Policy{Attempts: 100, BaseDelay: time.Millisecond}
	calls := 0
	err := p.Do(ctx, func(int) error {
		calls++
		if calls == 2 {
			cancel()
		}
		return errors.New("transient")
	})
	var ex *ExhaustedError
	if !errors.As(err, &ex) || ex.Reason != OutcomeCanceled {
		t.Fatalf("want canceled, got %v", err)
	}
	if calls > 3 {
		t.Fatalf("kept retrying after cancel: %d calls", calls)
	}
}

func TestDoBudget(t *testing.T) {
	p := Policy{
		Attempts:  100,
		BaseDelay: 40 * time.Millisecond,
		MaxDelay:  40 * time.Millisecond,
		Jitter:    0,
		Budget:    60 * time.Millisecond,
	}
	err := p.Do(context.Background(), func(int) error { return errors.New("transient") })
	var ex *ExhaustedError
	if !errors.As(err, &ex) || ex.Reason != OutcomeBudget {
		t.Fatalf("want budget exhaustion, got %v", err)
	}
}

func TestDelayGrowthAndCap(t *testing.T) {
	p := Policy{BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond, Multiplier: 2, Jitter: 0}
	want := []time.Duration{10, 20, 40, 80, 80, 80}
	for i, w := range want {
		if got := p.Delay(i + 1); got != w*time.Millisecond {
			t.Fatalf("Delay(%d) = %v, want %v", i+1, got, w*time.Millisecond)
		}
	}
}

func TestDelayJitterBoundsAndDeterminism(t *testing.T) {
	p := Policy{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second, Multiplier: 2, Jitter: 0.5, Seed: 42}
	for retries := 1; retries <= 4; retries++ {
		d1 := p.Delay(retries)
		d2 := p.Delay(retries)
		if d1 != d2 {
			t.Fatalf("seeded jitter not deterministic: %v vs %v", d1, d2)
		}
		base := 100 * time.Millisecond << (retries - 1)
		if base > time.Second {
			base = time.Second
		}
		lo := time.Duration(float64(base) * 0.5)
		hi := time.Duration(float64(base) * 1.5)
		if hi > time.Second {
			hi = time.Second
		}
		if d1 < lo || d1 > hi {
			t.Fatalf("Delay(%d) = %v outside [%v, %v]", retries, d1, lo, hi)
		}
	}
}

func TestDoRecordsMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	var slept []time.Duration
	p := Policy{Attempts: 4, Op: "test.op", Registry: reg, sleep: noSleep(&slept)}
	err := p.Do(context.Background(), func(attempt int) error {
		if attempt < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	text := reg.Text()
	for _, want := range []string{
		`gdmp_retry_attempts_total{op="test.op",outcome="error"} 2`,
		`gdmp_retry_attempts_total{op="test.op",outcome="ok"} 1`,
		`gdmp_retry_ops_total{op="test.op",outcome="ok"} 1`,
		`gdmp_retry_backoffs_total{op="test.op"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("missing %q in:\n%s", want, text)
		}
	}
}

func TestExhaustedErrorMessage(t *testing.T) {
	err := &ExhaustedError{Op: "x", Attempts: 2, Reason: OutcomeExhausted, Last: fmt.Errorf("last")}
	if !strings.Contains(err.Error(), "x gave up (exhausted) after 2 attempts") {
		t.Fatalf("message = %q", err.Error())
	}
}

// retryAfterErr is a transient failure carrying a server-suggested
// retry-after, like the admission layer's typed overload rejection.
type retryAfterErr struct{ after time.Duration }

func (e *retryAfterErr) Error() string             { return "overloaded" }
func (e *retryAfterErr) RetryAfter() time.Duration { return e.after }

func TestDoHonorsRetryAfterFloor(t *testing.T) {
	var slept []time.Duration
	reg := obs.NewRegistry()
	p := Policy{
		Attempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond,
		Jitter: 0, Op: "test.floor", Registry: reg, sleep: noSleep(&slept),
	}
	hint := 250 * time.Millisecond
	err := p.Do(context.Background(), func(int) error { return &retryAfterErr{after: hint} })
	if err == nil {
		t.Fatal("expected exhaustion")
	}
	if len(slept) != 2 {
		t.Fatalf("sleeps = %v, want 2", slept)
	}
	for _, d := range slept {
		if d < hint {
			t.Fatalf("backoff %v below the server-suggested floor %v", d, hint)
		}
	}
	if got := reg.CounterVec(MetricsPrefix+"_retry_after_floors_total", "", "op").
		WithLabelValues("test.floor").Value(); got != 2 {
		t.Fatalf("floors counter = %d, want 2", got)
	}
}

func TestRetryAfterOfUnwrapsChains(t *testing.T) {
	base := &retryAfterErr{after: time.Second}
	wrapped := fmt.Errorf("rpc: call gdmp.stage: %w", base)
	if got := RetryAfterOf(wrapped); got != time.Second {
		t.Fatalf("RetryAfterOf(wrapped) = %v, want 1s", got)
	}
	if got := RetryAfterOf(errors.New("plain")); got != 0 {
		t.Fatalf("RetryAfterOf(plain) = %v, want 0", got)
	}
}
