// Package retry is the repository's unified retry/backoff layer: one
// policy type shared by every network path (GridFTP transfers, Request
// Manager dials, stage requests, replica pulls, notification redelivery),
// so that partial failures — the dominant failure mode reported for the EU
// DataGrid testbed — are absorbed the same way everywhere.
//
// A Policy describes exponential backoff with jitter, an attempt cap, an
// overall wall-clock budget, and a retryable-error classification. Do runs
// a function under the policy, sleeping between attempts (context-aware:
// cancellation interrupts both the attempt gate and the backoff sleep).
// Every attempt and every finished operation is recorded in the
// gdmp_retry_* metric families through internal/obs, so tests and
// operators can account for retries exactly.
package retry

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"gdmp/internal/obs"
)

// MetricsPrefix prefixes every retry-layer metric.
const MetricsPrefix = "gdmp_retry"

// Outcome label values recorded in gdmp_retry_ops_total.
const (
	OutcomeOK        = "ok"        // the operation eventually succeeded
	OutcomePermanent = "permanent" // a non-retryable error stopped it
	OutcomeExhausted = "exhausted" // the attempt cap was reached
	OutcomeBudget    = "budget"    // the wall-clock budget ran out
	OutcomeCanceled  = "canceled"  // the context was canceled
)

// Policy describes how an operation is retried. The zero value is usable:
// defaults are three attempts, 50 ms initial backoff doubling to a 2 s
// ceiling, 20% jitter, no overall budget, and "retry everything except
// permanent and context errors".
type Policy struct {
	// Attempts caps the total number of tries (first try included).
	Attempts int

	// BaseDelay is the backoff before the second attempt; each further
	// backoff multiplies it by Multiplier, capped at MaxDelay.
	BaseDelay  time.Duration
	MaxDelay   time.Duration
	Multiplier float64

	// Jitter spreads each backoff uniformly over [d*(1-J), d*(1+J)].
	Jitter float64

	// Budget bounds the overall wall clock of Do, sleeps included; a
	// backoff that would overrun it fails the operation instead. Zero
	// means no budget.
	Budget time.Duration

	// Retryable classifies errors; nil uses DefaultRetryable.
	Retryable func(error) bool

	// Op labels this operation's series in the gdmp_retry_* families.
	// Empty disables instrumentation (used by pure backoff computations).
	Op string

	// Registry receives the instrumentation (obs.Default when nil).
	Registry *obs.Registry

	// Seed makes jitter deterministic when non-zero (fault-injection
	// harnesses log it so failures replay exactly).
	Seed int64

	// sleep substitutes the backoff sleep in unit tests.
	sleep func(ctx context.Context, d time.Duration) error
}

// DefaultPolicy is the baseline used across the daemons' network paths.
func DefaultPolicy() Policy {
	return Policy{
		Attempts:   3,
		BaseDelay:  50 * time.Millisecond,
		MaxDelay:   2 * time.Second,
		Multiplier: 2,
		Jitter:     0.2,
	}
}

// withDefaults fills unset fields.
func (p Policy) withDefaults() Policy {
	if p.Attempts <= 0 {
		p.Attempts = 3
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	if p.Jitter < 0 || p.Jitter > 1 {
		p.Jitter = 0.2
	}
	return p
}

// WithOp returns a copy labeled for one operation.
func (p Policy) WithOp(op string) Policy {
	p.Op = op
	return p
}

// permanentError marks an error as not worth retrying.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps err so that Do gives up immediately. A nil err returns
// nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err (or anything it wraps) was marked with
// Permanent.
func IsPermanent(err error) bool {
	var pe *permanentError
	return errors.As(err, &pe)
}

// DefaultRetryable retries every error except permanent marks and context
// cancellation/expiry.
func DefaultRetryable(err error) bool {
	if err == nil {
		return false
	}
	if IsPermanent(err) {
		return false
	}
	return !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
}

// ExhaustedError reports that a Do gave up; the last attempt's error is
// wrapped, so errors.Is/As see through it.
type ExhaustedError struct {
	Op       string
	Attempts int
	Reason   string // one of the Outcome* values
	Last     error
}

func (e *ExhaustedError) Error() string {
	op := e.Op
	if op == "" {
		op = "operation"
	}
	return fmt.Sprintf("retry: %s gave up (%s) after %d attempts: %v", op, e.Reason, e.Attempts, e.Last)
}

func (e *ExhaustedError) Unwrap() error { return e.Last }

// metrics bundles the retry-layer collectors for one registry.
type metrics struct {
	attempts *obs.CounterVec // {op, outcome}
	ops      *obs.CounterVec // {op, outcome}
	backoffs *obs.CounterVec // {op}
	floors   *obs.CounterVec // {op}
	sleep    *obs.Histogram
}

func metricsFor(r *obs.Registry) *metrics {
	if r == nil {
		r = obs.Default
	}
	return &metrics{
		attempts: r.CounterVec(MetricsPrefix+"_attempts_total",
			"Individual attempts made under a retry policy, by operation and outcome.",
			"op", "outcome"),
		ops: r.CounterVec(MetricsPrefix+"_ops_total",
			"Operations completed under a retry policy, by operation and final outcome.",
			"op", "outcome"),
		backoffs: r.CounterVec(MetricsPrefix+"_backoffs_total",
			"Backoff sleeps taken between attempts, by operation.", "op"),
		floors: r.CounterVec(MetricsPrefix+"_retry_after_floors_total",
			"Backoffs raised to a server-suggested retry-after, by operation.", "op"),
		sleep: r.Histogram(MetricsPrefix+"_backoff_seconds",
			"Backoff sleep durations.", nil),
	}
}

// jitterMu guards the global rand source used when no Seed is set.
var jitterMu sync.Mutex

// Delay returns the backoff before attempt retries+1 (retries >= 1 is the
// number of failures so far), jittered according to the policy.
func (p Policy) Delay(retries int) time.Duration {
	p = p.withDefaults()
	if retries < 1 {
		retries = 1
	}
	d := float64(p.BaseDelay)
	for i := 1; i < retries; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxDelay) {
			break
		}
	}
	if d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	if p.Jitter > 0 {
		var u float64
		if p.Seed != 0 {
			// Deterministic per (seed, retry) pair so replays match.
			u = rand.New(rand.NewSource(p.Seed + int64(retries))).Float64()
		} else {
			jitterMu.Lock()
			u = rand.Float64()
			jitterMu.Unlock()
		}
		d *= 1 - p.Jitter + 2*p.Jitter*u
		if d > float64(p.MaxDelay) {
			d = float64(p.MaxDelay)
		}
	}
	return time.Duration(d)
}

// RetryAfterOf extracts a server-suggested retry-after hint from err: any
// error in the chain exposing RetryAfter() time.Duration (such as the
// admission package's typed overload rejection) supplies it; zero means
// no hint. Do honors the hint as a floor under the computed backoff.
func RetryAfterOf(err error) time.Duration {
	var ra interface{ RetryAfter() time.Duration }
	if errors.As(err, &ra) {
		return ra.RetryAfter()
	}
	return 0
}

// Sleep waits for d or until the context is done, whichever comes first.
func Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Do runs fn under the policy. fn receives the 1-based attempt number.
// Attempts stop on success, on a non-retryable error, when the attempt cap
// or wall-clock budget is reached, or when ctx is done; the final error is
// an *ExhaustedError wrapping the last attempt's error (or the error
// itself when classified permanent).
func (p Policy) Do(ctx context.Context, fn func(attempt int) error) error {
	p = p.withDefaults()
	retryable := p.Retryable
	if retryable == nil {
		retryable = DefaultRetryable
	}
	var m *metrics
	if p.Op != "" {
		m = metricsFor(p.Registry)
	}
	sleep := p.sleep
	if sleep == nil {
		sleep = Sleep
	}
	var deadline time.Time
	if p.Budget > 0 {
		deadline = time.Now().Add(p.Budget)
	}

	finish := func(outcome string) {
		if m != nil {
			m.ops.WithLabelValues(p.Op, outcome).Inc()
		}
	}

	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			finish(OutcomeCanceled)
			return &ExhaustedError{Op: p.Op, Attempts: attempt - 1, Reason: OutcomeCanceled, Last: err}
		}
		err := fn(attempt)
		if m != nil {
			outcome := "ok"
			if err != nil {
				outcome = "error"
			}
			m.attempts.WithLabelValues(p.Op, outcome).Inc()
		}
		if err == nil {
			finish(OutcomeOK)
			return nil
		}
		if !retryable(err) {
			finish(OutcomePermanent)
			return err
		}
		if attempt >= p.Attempts {
			finish(OutcomeExhausted)
			return &ExhaustedError{Op: p.Op, Attempts: attempt, Reason: OutcomeExhausted, Last: err}
		}
		d := p.Delay(attempt)
		if ra := RetryAfterOf(err); ra > d {
			// An overloaded server's suggested retry-after is a floor under
			// our own backoff: respecting it lets the server cool instead of
			// amplifying the storm.
			d = ra
			if m != nil {
				m.floors.WithLabelValues(p.Op).Inc()
			}
		}
		if !deadline.IsZero() && time.Now().Add(d).After(deadline) {
			finish(OutcomeBudget)
			return &ExhaustedError{Op: p.Op, Attempts: attempt, Reason: OutcomeBudget, Last: err}
		}
		if m != nil {
			m.backoffs.WithLabelValues(p.Op).Inc()
			m.sleep.ObserveDuration(d)
		}
		if serr := sleep(ctx, d); serr != nil {
			finish(OutcomeCanceled)
			// Surface both the cancellation (so errors.Is(err,
			// context.Canceled) holds for callers deciding whether to
			// requeue) and the attempt's own failure.
			return &ExhaustedError{Op: p.Op, Attempts: attempt, Reason: OutcomeCanceled, Last: errors.Join(serr, err)}
		}
	}
}
