// Catalog RLS benchmark: the sharded LRC under a million-LFN corpus.
// Loads ≥1M logical files, sustains a lookup storm, measures lookup
// throughput under journaled write load against both the sharded catalog
// and the historical single-mutex baseline (Shards: 1), and checks the
// bloom digest's false-positive rate against its configured bound.
//
// The run is gated behind BENCH_CATALOG_OUT so `go test ./...` stays
// fast:
//
//	BENCH_CATALOG_OUT=BENCH_catalog.json go test -run TestCatalogBenchmark -v .
//
// `make bench-catalog` wraps exactly that; CI runs it and uploads the
// JSON alongside BENCH_pull and BENCH_cache.
package gdmp_test

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"gdmp/internal/obs"
	"gdmp/internal/replica"
)

const (
	catBenchLFNs        = 1_000_000
	catBenchLookups     = 500_000                // total lookups in the throughput storm
	catBenchContended   = 20_000                 // lookups per contended run
	catBenchJournalHold = 200 * time.Microsecond // simulated WAL-append hold under the write lock
	catBenchFPTarget    = 0.01                   // configured digest FP rate
	catBenchFPBound     = 0.03                   // measured rate must stay under 3x target
	catBenchFPProbes    = 200_000
)

// catBenchResult is the BENCH_catalog.json document.
type catBenchResult struct {
	Benchmark string `json:"benchmark"`
	LFNs      int    `json:"lfns"`
	Shards    int    `json:"shards"`
	Workers   int    `json:"workers"`

	LoadSeconds   float64 `json:"load_seconds"`
	LookupsPerSec float64 `json:"lookups_per_sec"`
	LookupP99Us   float64 `json:"lookup_p99_us"`

	// Lookup throughput while a writer journals mutations (the write
	// lock is held across the simulated WAL append), sharded vs the
	// historical single-mutex catalog.
	JournalHoldUs          float64 `json:"journal_hold_us"`
	ContendedPerSecSharded float64 `json:"contended_lookups_per_sec_sharded"`
	ContendedPerSecSingle  float64 `json:"contended_lookups_per_sec_single_mutex"`
	ShardSpeedup           float64 `json:"shard_speedup"`

	BloomFPConfigured float64 `json:"bloom_fp_configured"`
	BloomFPMeasured   float64 `json:"bloom_fp_measured"`
	BloomFPBound      float64 `json:"bloom_fp_bound"`
	BloomFPProbes     int     `json:"bloom_fp_probes"`
}

func catBenchLFN(i int) string {
	return fmt.Sprintf("lfn://bench.cern.ch/run2026/f%07d.db", i)
}

// loadCatalog registers the full corpus into a fresh catalog with the
// given shard count.
func loadCatalog(t *testing.T, shards int) (*replica.Catalog, time.Duration) {
	t.Helper()
	c := replica.New(replica.Options{Shards: shards, Registry: obs.NewRegistry()})
	attrs := map[string]string{replica.AttrSize: "1048576"}
	start := time.Now()
	for i := 0; i < catBenchLFNs; i++ {
		if err := c.Register(catBenchLFN(i), attrs); err != nil {
			t.Fatal(err)
		}
	}
	return c, time.Since(start)
}

// contendedLookups measures lookup throughput while a background writer
// continuously journals attribute mutations. The mutation hook runs
// under the shard's write lock (the journal-before-ack contract), so the
// simulated WAL-append hold is exactly the window a lookup on the same
// shard must wait out. With one shard, every lookup sits behind every
// journaled write; with 64, only the 1/64 that hash alongside it — the
// serialization the RLS split removes, measurable even on one core
// because the hold is I/O wait, not CPU.
func contendedLookups(t *testing.T, c *replica.Catalog) float64 {
	t.Helper()
	c.OnMutate(func(replica.Mutation) error {
		time.Sleep(catBenchJournalHold)
		return nil
	})
	defer c.OnMutate(nil)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(1))
		touch := map[string]string{"touched": "1"}
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := c.SetAttrs(catBenchLFN(rng.Intn(catBenchLFNs)), touch); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	rng := rand.New(rand.NewSource(2))
	start := time.Now()
	for i := 0; i < catBenchContended; i++ {
		if err := c.ReadEntry(catBenchLFN(rng.Intn(catBenchLFNs)), func(*replica.LogicalFile) {}); err != nil {
			t.Error(err)
			break
		}
	}
	elapsed := time.Since(start)
	close(stop)
	wg.Wait()
	return float64(catBenchContended) / elapsed.Seconds()
}

func TestCatalogBenchmark(t *testing.T) {
	out := os.Getenv("BENCH_CATALOG_OUT")
	if out == "" {
		t.Skip("set BENCH_CATALOG_OUT=<path> to run the catalog RLS benchmark")
	}
	workers := runtime.GOMAXPROCS(0)

	// Phase 1: load the corpus into the sharded catalog.
	sharded, loadDur := loadCatalog(t, replica.DefaultShards)
	t.Logf("loaded %d LFNs into %d shards in %v", catBenchLFNs, sharded.ShardCount(), loadDur)
	if st := sharded.Stats(); st.Files != catBenchLFNs {
		t.Fatalf("catalog holds %d files, want %d", st.Files, catBenchLFNs)
	}

	// Phase 2: concurrent lookup storm on the full public Lookup path.
	var wg sync.WaitGroup
	perWorker := catBenchLookups / workers
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 100))
			for i := 0; i < perWorker; i++ {
				if _, err := sharded.Lookup(catBenchLFN(rng.Intn(catBenchLFNs))); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	lookupsPerSec := float64(perWorker*workers) / time.Since(start).Seconds()
	p99us := sharded.LookupQuantile(0.99) * 1e6
	t.Logf("%.0f lookups/sec across %d workers (p99 %.1fus)", lookupsPerSec, workers, p99us)

	// Phase 3: lookups under journaled write load, sharded vs single mutex.
	shardedOps := contendedLookups(t, sharded)
	single, _ := loadCatalog(t, 1)
	singleOps := contendedLookups(t, single)
	speedup := shardedOps / singleOps
	t.Logf("contended lookups: sharded %.0f/sec, single-mutex %.0f/sec, speedup %.2fx",
		shardedOps, singleOps, speedup)

	// Phase 4: digest false-positive rate over LFNs nobody holds.
	digest := sharded.Digest(catBenchFPTarget)
	fps := 0
	for i := 0; i < catBenchFPProbes; i++ {
		if digest.Test(fmt.Sprintf("lfn://absent.fnal.gov/nope%07d", i)) {
			fps++
		}
	}
	fpRate := float64(fps) / catBenchFPProbes
	t.Logf("bloom digest: %d/%d false positives (%.4f, configured %.2f)",
		fps, catBenchFPProbes, fpRate, catBenchFPTarget)

	res := catBenchResult{
		Benchmark: "catalog_rls",
		LFNs:      catBenchLFNs,
		Shards:    sharded.ShardCount(),
		Workers:   workers,

		LoadSeconds:   loadDur.Seconds(),
		LookupsPerSec: lookupsPerSec,
		LookupP99Us:   p99us,

		JournalHoldUs:          float64(catBenchJournalHold) / float64(time.Microsecond),
		ContendedPerSecSharded: shardedOps,
		ContendedPerSecSingle:  singleOps,
		ShardSpeedup:           speedup,

		BloomFPConfigured: catBenchFPTarget,
		BloomFPMeasured:   fpRate,
		BloomFPBound:      catBenchFPBound,
		BloomFPProbes:     catBenchFPProbes,
	}
	doc, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(doc, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)

	// Acceptance floors.
	if lookupsPerSec < 10_000 {
		t.Errorf("sustained %.0f lookups/sec < 10k floor", lookupsPerSec)
	}
	if speedup <= 1 {
		t.Errorf("sharded catalog (%.0f lookups/sec under write load) does not beat the single-mutex baseline (%.0f)",
			shardedOps, singleOps)
	}
	if fpRate >= catBenchFPBound {
		t.Errorf("digest FP rate %.4f breaches the %.2f bound", fpRate, catBenchFPBound)
	}
}
