// Command benchfig regenerates the paper's evaluation as text tables: the
// Figure 5 and Figure 6 stream sweeps, the four Section 6 conclusions, the
// TCP buffer formula check, and the Section 5.1 sparse-selection analysis.
// Its output is the source for EXPERIMENTS.md.
//
// Usage:
//
//	benchfig [-fig 5|6|conclusions|buffer|sparse|all] [-repeats 10]
package main

import (
	"flag"
	"fmt"
	"os"

	"gdmp/internal/netsim"
	"gdmp/internal/workload"
)

func main() {
	fig := flag.String("fig", "all", "which experiment: 5, 6, conclusions, buffer, sparse, all")
	repeats := flag.Int("repeats", 10, "seeds averaged per data point")
	flag.Parse()

	var err error
	switch *fig {
	case "5":
		err = figure5(*repeats)
	case "6":
		err = figure6(*repeats)
	case "conclusions":
		err = conclusions(*repeats)
	case "buffer":
		err = bufferSweep()
	case "sparse":
		sparse()
	case "all":
		if err = figure5(*repeats); err == nil {
			if err = figure6(*repeats); err == nil {
				if err = conclusions(*repeats); err == nil {
					if err = bufferSweep(); err == nil {
						sparse()
					}
				}
			}
		}
	default:
		err = fmt.Errorf("unknown -fig %q", *fig)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchfig:", err)
		os.Exit(1)
	}
}

func figure5(repeats int) error {
	sw, err := netsim.Figure5(repeats)
	if err != nil {
		return err
	}
	fmt.Println("Figure 5: transfer rate (Mbps) vs parallel streams, default 64 KB buffers")
	fmt.Println("45 Mbps CERN-ANL link, 125 ms RTT")
	fmt.Print(sw.Table())
	peak, at := sw.PeakRate(100)
	fmt.Printf("peak (100 MB file): %.1f Mbps at %d streams (paper: ~23 Mbps at ~9 streams)\n\n", peak, at)
	return nil
}

func figure6(repeats int) error {
	sw, err := netsim.Figure6(repeats)
	if err != nil {
		return err
	}
	fmt.Println("Figure 6: the same sweep with TCP buffers tuned to 1 MB")
	fmt.Print(sw.Table())
	r3 := sw.Rate(100, 3)
	peak, at := sw.PeakRate(100)
	fmt.Printf("3 streams reach %.1f Mbps of the %.1f Mbps peak (at %d streams); paper: peak with just 3 streams\n\n",
		r3, peak, at)
	return nil
}

func conclusions(repeats int) error {
	cfg := netsim.CERNtoANL()
	rate := func(streams, buffer int) float64 {
		m, err := netsim.MeanThroughputMbps(cfg, netsim.Transfer{
			FileBytes: 100 * netsim.MB, Streams: streams, BufferBytes: buffer,
		}, repeats)
		if err != nil {
			panic(err)
		}
		return m
	}
	u1 := rate(1, netsim.UntunedBufferBytes)
	u10 := rate(10, netsim.UntunedBufferBytes)
	t1 := rate(1, netsim.TunedBufferBytes)
	t2 := rate(2, netsim.TunedBufferBytes)
	t3 := rate(3, netsim.TunedBufferBytes)
	uPeak, tPeak := u1, t1
	for s := 2; s <= 10; s++ {
		if r := rate(s, netsim.UntunedBufferBytes); r > uPeak {
			uPeak = r
		}
		if r := rate(s, netsim.TunedBufferBytes); r > tPeak {
			tPeak = r
		}
	}
	best23 := t2
	if t3 > best23 {
		best23 = t3
	}
	fmt.Println("Section 6 conclusions (100 MB file):")
	fmt.Printf("  C1 buffer tuning dominates:   1 tuned stream %.1f vs 1 untuned %.1f  (%.1fx)\n", t1, u1, t1/u1)
	fmt.Printf("  C2 10 untuned ~ 2-3 tuned:    %.1f vs %.1f  (ratio %.2f)\n", u10, best23, u10/best23)
	fmt.Printf("  C3 parallel tuned gain:       2-3 streams %.1f vs 1 stream %.1f  (+%.0f%%, paper ~25%%)\n",
		best23, t1, (best23/t1-1)*100)
	fmt.Printf("  C4 untuned catches up:        untuned peak %.1f vs tuned peak %.1f  (ratio %.2f)\n\n",
		uPeak, tPeak, uPeak/tPeak)
	return nil
}

func bufferSweep() error {
	cfg := netsim.CERNtoANL()
	cfg.LossRate = 0
	opt := netsim.OptimalBufferBytes(cfg)
	fmt.Printf("TCP buffer sweep (single stream, lossless): formula optimum = RTT x bandwidth = %d KB\n", opt/1024)
	fmt.Printf("%-12s %10s\n", "buffer", "Mbps")
	for _, buf := range []int{opt / 8, opt / 4, opt / 2, opt, 2 * opt, 4 * opt} {
		r, err := netsim.Simulate(cfg, netsim.Transfer{
			FileBytes: 100 * netsim.MB, Streams: 1, BufferBytes: buf,
		})
		if err != nil {
			return err
		}
		mark := ""
		if buf == opt {
			mark = "  <- RTT x bottleneck bandwidth"
		}
		fmt.Printf("%-12s %10.2f%s\n", fmt.Sprintf("%dKB", buf/1024), r.ThroughputMbps, mark)
	}
	fmt.Println()
	return nil
}

func sparse() {
	fmt.Println("Section 5.1 sparse selection: file vs object replication")
	fmt.Println("(n events, m selected, k objects/file, 10 KB objects)")
	fmt.Printf("%-14s %-10s %-8s %14s %14s %12s %18s\n",
		"events", "selected", "obj/file", "object-repl", "file-repl", "overhead", "P(file>50%sel)")
	rows := []workload.SparseModel{
		{Events: 1_000_000_000, Selected: 1_000_000, ObjectsPerFile: 1000, ObjectSize: 10_000},
		{Events: 1_000_000_000, Selected: 1_000_000, ObjectsPerFile: 100, ObjectSize: 10_000},
		{Events: 1_000_000_000, Selected: 10_000_000, ObjectsPerFile: 1000, ObjectSize: 10_000},
		{Events: 1_000_000_000, Selected: 100_000_000, ObjectsPerFile: 1000, ObjectSize: 10_000},
		{Events: 1_000_000_000, Selected: 1_000_000_000, ObjectsPerFile: 1000, ObjectSize: 10_000},
	}
	for _, m := range rows {
		fmt.Printf("%-14d %-10d %-8d %12.1fGB %12.1fGB %11.1fx %18.2e\n",
			m.Events, m.Selected, m.ObjectsPerFile,
			m.ObjectBytes()/1e9, m.FileBytes()/1e9, m.Overhead(), m.ProbMajoritySelected())
	}
	fmt.Println("\npaper example row 1: object replication ships the needed 10 GB; file")
	fmt.Println("replication would ship essentially the whole dataset (the paper notes a")
	fmt.Println("suitable <=20 GB file set 'can very likely not be found at all').")
}
