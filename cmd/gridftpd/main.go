// Command gridftpd runs a standalone GridFTP server (Section 3.2) over a
// storage directory: GSI-authenticated control channel, parallel
// extended-block data channels, partial and restartable transfers, CRC
// checks, and 112 performance markers.
//
// Usage:
//
//	gridftpd -root /data -listen :2811 -cred certs/site.pem -ca certs/ca.pem \
//	         [-gridmap gridmap] [-markers 10485760] [-block 65536]
//
// Without -gridmap, every authenticated identity gets read and write access.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"

	"gdmp/internal/gridftp"
	"gdmp/internal/gsi"
)

func main() {
	root := flag.String("root", "", "directory to serve (required)")
	listen := flag.String("listen", ":2811", "address to listen on")
	credPath := flag.String("cred", "", "server credential file (required)")
	caPath := flag.String("ca", "", "trust anchor certificate (required)")
	gridmap := flag.String("gridmap", "", "authorization gridmap (default: allow all)")
	markers := flag.Int64("markers", 0, "emit a performance marker every N bytes (0 disables)")
	block := flag.Int("block", gridftp.DefaultBlockSize, "extended block payload size")
	flag.Parse()

	if err := run(*root, *listen, *credPath, *caPath, *gridmap, *markers, *block); err != nil {
		fmt.Fprintln(os.Stderr, "gridftpd:", err)
		os.Exit(1)
	}
}

func run(root, listen, credPath, caPath, gridmap string, markers int64, block int) error {
	if root == "" || credPath == "" || caPath == "" {
		return fmt.Errorf("-root, -cred and -ca are required")
	}
	cred, err := gsi.LoadCredential(credPath)
	if err != nil {
		return err
	}
	anchor, err := gsi.LoadCertificate(caPath)
	if err != nil {
		return err
	}
	var acl *gsi.ACL
	if gridmap != "" {
		f, err := os.Open(gridmap)
		if err != nil {
			return err
		}
		acl, err = gsi.ParseGridmap(f)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		acl = gsi.NewACL()
		acl.AllowAll(gridftp.OpRead, gridftp.OpWrite)
	}

	srv, err := gridftp.NewServer(gridftp.ServerConfig{
		Root:        root,
		Cred:        cred,
		TrustRoots:  []*gsi.Certificate{anchor},
		ACL:         acl,
		BlockSize:   block,
		MarkerBytes: markers,
		Logger:      log.Default(),
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	log.Printf("gridftp server %s serving %s on %s", cred.Identity(), root, ln.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	select {
	case err := <-errCh:
		return err
	case s := <-sig:
		log.Printf("received %v, shutting down", s)
		return srv.Close()
	}
}
