// Command gridca manages the Grid trust domain: it creates a certificate
// authority and issues user and service credentials, the offline half of
// the GSI security infrastructure every GDMP deployment needs.
//
// Usage:
//
//	gridca init  -dir certs -org DataGrid [-validity 8760h]
//	gridca issue -dir certs -cn "gdmp/cern.ch" -out certs/cern.pem [-validity 720h]
//	gridca proxy -cred certs/cern.pem -out certs/cern-proxy.pem [-validity 12h]
//	gridca show  -cred certs/cern.pem
//
// init writes ca.pem (the public trust anchor, distribute it everywhere)
// and ca-key.pem (keep it offline). issue mints a long-lived identity;
// proxy derives a short-lived single-sign-on credential from one.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"gdmp/internal/gsi"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "init":
		err = cmdInit(os.Args[2:])
	case "issue":
		err = cmdIssue(os.Args[2:])
	case "proxy":
		err = cmdProxy(os.Args[2:])
	case "show":
		err = cmdShow(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "gridca:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: gridca {init|issue|proxy|show} [flags]")
	os.Exit(2)
}

func cmdInit(args []string) error {
	fs := flag.NewFlagSet("init", flag.ExitOnError)
	dir := fs.String("dir", "certs", "directory for CA files")
	org := fs.String("org", "DataGrid", "organization (trust domain) name")
	validity := fs.Duration("validity", 5*365*24*time.Hour, "CA certificate lifetime")
	fs.Parse(args)

	if err := os.MkdirAll(*dir, 0o755); err != nil {
		return err
	}
	ca, err := gsi.NewCA(*org, *validity)
	if err != nil {
		return err
	}
	if err := gsi.SaveCertificate(ca.Certificate(), filepath.Join(*dir, "ca.pem")); err != nil {
		return err
	}
	if err := gsi.SaveCredential(ca.Credential(), filepath.Join(*dir, "ca-key.pem")); err != nil {
		return err
	}
	fmt.Printf("created CA %s\n  trust anchor: %s\n  private key:  %s\n",
		ca.Certificate().Subject, filepath.Join(*dir, "ca.pem"), filepath.Join(*dir, "ca-key.pem"))
	return nil
}

func cmdIssue(args []string) error {
	fs := flag.NewFlagSet("issue", flag.ExitOnError)
	dir := fs.String("dir", "certs", "directory holding ca-key.pem")
	cn := fs.String("cn", "", "common name of the new identity (required)")
	out := fs.String("out", "", "output credential file (required)")
	validity := fs.Duration("validity", 30*24*time.Hour, "credential lifetime")
	fs.Parse(args)
	if *cn == "" || *out == "" {
		return fmt.Errorf("issue requires -cn and -out")
	}
	caCred, err := gsi.LoadCredential(filepath.Join(*dir, "ca-key.pem"))
	if err != nil {
		return fmt.Errorf("load CA: %w", err)
	}
	ca, err := gsi.NewCAFromCredential(caCred)
	if err != nil {
		return err
	}
	cred, err := ca.Issue(*cn, *validity)
	if err != nil {
		return err
	}
	if err := gsi.SaveCredential(cred, *out); err != nil {
		return err
	}
	fmt.Printf("issued %s -> %s (valid until %s)\n",
		cred.Identity(), *out, cred.Cert.NotAfter.Format(time.RFC3339))
	return nil
}

func cmdProxy(args []string) error {
	fs := flag.NewFlagSet("proxy", flag.ExitOnError)
	credPath := fs.String("cred", "", "credential to delegate from (required)")
	out := fs.String("out", "", "output proxy file (required)")
	validity := fs.Duration("validity", 12*time.Hour, "proxy lifetime")
	fs.Parse(args)
	if *credPath == "" || *out == "" {
		return fmt.Errorf("proxy requires -cred and -out")
	}
	cred, err := gsi.LoadCredential(*credPath)
	if err != nil {
		return err
	}
	proxy, err := cred.Delegate(*validity)
	if err != nil {
		return err
	}
	if err := gsi.SaveCredential(proxy, *out); err != nil {
		return err
	}
	fmt.Printf("delegated %s -> %s (valid until %s)\n",
		proxy.Identity(), *out, proxy.Cert.NotAfter.Format(time.RFC3339))
	return nil
}

func cmdShow(args []string) error {
	fs := flag.NewFlagSet("show", flag.ExitOnError)
	credPath := fs.String("cred", "", "credential file to inspect (required)")
	fs.Parse(args)
	if *credPath == "" {
		return fmt.Errorf("show requires -cred")
	}
	cred, err := gsi.LoadCredential(*credPath)
	if err != nil {
		return err
	}
	for i, cert := range cred.FullChain() {
		role := "identity"
		if cert.IsCA {
			role = "CA root"
		} else if cert.IsProxy {
			role = "proxy"
		}
		fmt.Printf("%d: %-8s %s (issuer %s, serial %d, expires %s)\n",
			i, role, cert.Subject, cert.Issuer, cert.Serial,
			cert.NotAfter.Format(time.RFC3339))
	}
	return nil
}
