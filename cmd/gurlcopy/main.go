// Command gurlcopy is the analogue of globus-url-copy: a scriptable file
// transfer tool over the GridFTP protocol with parallel streams, tuned TCP
// buffers, restart, and CRC verification.
//
// Usage:
//
//	gurlcopy -cred user.pem -ca ca.pem [flags] <src> <dst>
//
//	gurlcopy ... gridftp://a:2811/data/f.db  /tmp/f.db      # download
//	gurlcopy ... /tmp/f.db  gridftp://a:2811/incoming/f.db  # upload
//	gurlcopy ... gridftp://a:2811/f  gridftp://b:2811/f     # third party
//
// Flags -p (parallel streams) and -tcp-bs (socket buffer) mirror the
// tuning knobs studied in Section 6 of the paper.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"gdmp/internal/core"
	"gdmp/internal/gridftp"
	"gdmp/internal/gsi"
	"gdmp/internal/retry"
)

func main() {
	credPath := flag.String("cred", "", "credential file (required)")
	caPath := flag.String("ca", "", "trust anchor certificate (required)")
	parallel := flag.Int("p", 1, "number of parallel TCP streams")
	tcpBS := flag.Int("tcp-bs", 0, "TCP socket buffer size in bytes (0 = OS default)")
	attempts := flag.Int("attempts", 3, "restart attempts for downloads")
	retryBase := flag.Duration("retry-base", 50*time.Millisecond, "initial backoff between restart attempts")
	retryMax := flag.Duration("retry-max", 2*time.Second, "backoff ceiling between restart attempts")
	flag.Parse()

	pol := retry.DefaultPolicy()
	pol.Attempts = *attempts
	pol.BaseDelay = *retryBase
	pol.MaxDelay = *retryMax
	// An interrupt cancels the context, which severs the active GridFTP
	// session and aborts the transfer mid-stream.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, *credPath, *caPath, *parallel, *tcpBS, pol, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "gurlcopy:", err)
		os.Exit(1)
	}
}

func isRemote(s string) bool { return strings.HasPrefix(s, "gridftp://") }

func run(ctx context.Context, credPath, caPath string, parallel, tcpBS int, pol retry.Policy, args []string) error {
	if credPath == "" || caPath == "" {
		return fmt.Errorf("-cred and -ca are required")
	}
	if len(args) != 2 {
		return fmt.Errorf("usage: gurlcopy [flags] <src> <dst>")
	}
	cred, err := gsi.LoadCredential(credPath)
	if err != nil {
		return err
	}
	anchor, err := gsi.LoadCertificate(caPath)
	if err != nil {
		return err
	}
	roots := []*gsi.Certificate{anchor}
	opts := []gridftp.ClientOption{gridftp.WithParallelism(parallel)}
	if tcpBS > 0 {
		opts = append(opts, gridftp.WithBufferSize(tcpBS))
	}
	dial := func(ctx context.Context, addr string) (*gridftp.Client, error) {
		return gridftp.DialContext(ctx, addr, cred, roots, opts...)
	}

	src, dst := args[0], args[1]
	start := time.Now()
	var stats gridftp.TransferStats

	switch {
	case isRemote(src) && isRemote(dst):
		srcPFN, err := core.ParsePFN(src)
		if err != nil {
			return err
		}
		dstPFN, err := core.ParsePFN(dst)
		if err != nil {
			return err
		}
		srcCl, err := dial(ctx, srcPFN.Addr)
		if err != nil {
			return err
		}
		defer srcCl.Close()
		dstCl, err := dial(ctx, dstPFN.Addr)
		if err != nil {
			return err
		}
		defer dstCl.Close()
		stats, err = gridftp.ThirdParty(srcCl, dstCl, srcPFN.Path, dstPFN.Path)
		if err != nil {
			return err
		}

	case isRemote(src):
		pfn, err := core.ParsePFN(src)
		if err != nil {
			return err
		}
		connect := func(ctx context.Context) (*gridftp.Client, error) { return dial(ctx, pfn.Addr) }
		stats, err = gridftp.ReliableGetFile(ctx, connect, pfn.Path, dst, pol)
		if err != nil {
			return err
		}

	case isRemote(dst):
		pfn, err := core.ParsePFN(dst)
		if err != nil {
			return err
		}
		cl, err := dial(ctx, pfn.Addr)
		if err != nil {
			return err
		}
		defer cl.Close()
		stats, err = cl.PutFile(src, pfn.Path)
		if err != nil {
			return err
		}

	default:
		return fmt.Errorf("at least one endpoint must be a gridftp:// URL")
	}

	fmt.Printf("%d bytes in %v: %.2f Mbps (%d streams)\n",
		stats.Bytes, time.Since(start).Round(time.Millisecond),
		stats.RateMbps(), stats.Streams)
	if len(stats.Markers) > 0 {
		fmt.Printf("%d performance markers received\n", len(stats.Markers))
	}
	return nil
}
