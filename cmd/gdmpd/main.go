// Command gdmpd runs a complete GDMP site daemon (Section 4): the GDMP
// server with its subscription, notification, catalog, and staging
// services, plus the site's GridFTP server over the local disk pool,
// registered against the Grid's central replica catalog.
//
// Usage:
//
//	gdmpd -name cern.ch -data /pool -rc replicad.host:39000 \
//	      -cred certs/cern.pem -ca certs/ca.pem \
//	      [-listen :38000] [-ftp-listen :2811] [-metrics :9090] \
//	      [-state-dir /var/lib/gdmp] [-drain-timeout 30s] \
//	      [-rc-serve :39000 -rc-save-every 1m] \
//	      [-tape /tape -pool-capacity 1073741824 -pool-policy lru] \
//	      [-prefetch 3] [-federation] \
//	      [-auto] [-parallel 4] [-tcp-buffer 1048576] [-gridmap gridmap] \
//	      [-retry-attempts 3 -retry-base 50ms -retry-max 2s] \
//	      [-transfer-attempts 3] [-notify-failures 3] \
//	      [-scrub-interval 1h -scrub-rate 8388608] \
//	      [-anti-entropy-interval 6h] \
//	      [-quarantine-max-age 168h -quarantine-max-count 1024] \
//	      [-parity-k 8 -parity-m 2]
//
// With -tape, the site runs a Mass Storage System: the pool acts as a cache
// and files are staged from the tape directory on demand; -pool-policy
// picks the eviction order (lru or fifo) and -prefetch N warms a
// collection's remaining members after N pool misses hit it. With
// -federation, the site maintains an object database federation and can
// replicate "objectivity" files (arrivals are attached automatically).
// With -metrics, the daemon serves its instrumentation registry in the
// Prometheus text exposition format at http://<addr>/metrics (the same
// dump `gdmp stats` fetches over the authenticated control channel).
//
// With -state-dir, the site is crash-safe: every acknowledged mutation
// (publications, subscriptions, notification queues, pending pulls, the
// local catalog) is journaled under the directory before it is acked, and
// a restart replays the journal, quarantines suspect files under
// <state-dir>/quarantine, and requeues unfinished transfers. SIGTERM then
// drains gracefully: admissions stop, in-flight transfers get
// -drain-timeout to finish, and whatever remains stays journaled for the
// next start (SIGINT still shuts down immediately).
//
// With -scrub-interval, the site self-heals: a background scrubber
// re-reads every cataloged replica at the -scrub-rate byte pace and
// verifies its CRC, quarantining corrupt bytes and re-replicating from a
// surviving location. With -anti-entropy-interval, the site periodically
// swaps compact (LFN, size, CRC) digests with its producers and
// subscribers, pulling files whose notifications were lost and
// withdrawing dangling replica-catalog locations. -quarantine-max-age
// and -quarantine-max-count bound the quarantine directory. `gdmp fsck`
// triggers a full on-demand integrity pass.
//
// With -parity-k/-parity-m, every published or landed replica gets an
// erasure-coded parity sidecar (k data + m parity blocks, Reed-Solomon
// over GF(2^8)): the scrubber then verifies block-by-block and rebuilds
// up to m damaged blocks in place from local bytes, falling back to the
// WAN re-pull only when the damage exceeds the parity budget or the
// sidecar itself is unusable.
//
// With -rc-serve, the daemon additionally hosts an embedded replica
// catalog server on the given address — a one-process Grid for small
// deployments. With -state-dir, the embedded catalog is journaled under
// <state-dir>/rc (every mutation write-ahead logged before the ack,
// compacted into per-shard snapshots every -rc-save-every); a legacy
// <state-dir>/rc.snap is imported once while the store is empty. Without
// -state-dir it is memory only. -rc-shards sets its LFN shard count.
//
// With -digest-interval, the site joins the Replica Location Index: every
// interval it condenses its local catalog into a bloom digest and pushes
// it to the RLI co-hosted with the catalog server, where it lives as soft
// state for -digest-ttl (default 3x the interval). Peers whose central
// lookups come up empty then ask the RLI which sites might hold the file
// and confirm with per-site LRC point queries (a digest false positive —
// rate tuned by -digest-fp — costs one wasted query, never a wrong
// answer).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"gdmp/internal/admission"
	"gdmp/internal/core"
	"gdmp/internal/gsi"
	"gdmp/internal/health"
	"gdmp/internal/mss"
	"gdmp/internal/objectstore"
	"gdmp/internal/objrep"
	"gdmp/internal/obs"
	"gdmp/internal/replica"
	"gdmp/internal/retry"
)

func main() {
	name := flag.String("name", "", "site name, e.g. cern.ch (required)")
	data := flag.String("data", "", "disk pool directory (required)")
	rcAddr := flag.String("rc", "", "replica catalog address (required)")
	credPath := flag.String("cred", "", "site credential file (required)")
	caPath := flag.String("ca", "", "trust anchor certificate (required)")
	listen := flag.String("listen", ":38000", "GDMP control address")
	ftpListen := flag.String("ftp-listen", ":2811", "GridFTP data address")
	tape := flag.String("tape", "", "tape directory (enables the MSS)")
	poolCap := flag.Int64("pool-capacity", 1<<30, "disk pool capacity in bytes (with -tape)")
	poolPolicy := flag.String("pool-policy", "lru", "disk pool eviction policy: lru or fifo (with -tape)")
	prefetch := flag.Int("prefetch", 0, "pool misses per collection before prefetching the rest (0 = off)")
	federation := flag.Bool("federation", false, "run an object database federation")
	auto := flag.Bool("auto", false, "auto-replicate files on notification")
	parallel := flag.Int("parallel", 2, "parallel TCP streams for transfers")
	tcpBuffer := flag.Int("tcp-buffer", 0, "TCP socket buffer size (0 = OS default)")
	autoTune := flag.Bool("auto-tune", false, "negotiate TCP buffers per source (RTT x bandwidth)")
	gridmap := flag.String("gridmap", "", "authorization gridmap (default: allow all)")
	metricsAddr := flag.String("metrics", "", "serve /metrics over HTTP on this address (empty = off)")
	retryAttempts := flag.Int("retry-attempts", 3, "attempt cap for retried network operations")
	retryBase := flag.Duration("retry-base", 50*time.Millisecond, "initial backoff between retries")
	retryMax := flag.Duration("retry-max", 2*time.Second, "backoff ceiling between retries")
	transferAttempts := flag.Int("transfer-attempts", 3, "restart attempts per file transfer")
	notifyFailures := flag.Int("notify-failures", 3, "consecutive notification failures before a subscriber is suspect")
	pullWorkers := flag.Int("pull-workers", 4, "concurrent pull replications")
	perSource := flag.Int("per-source", 0, "max concurrent transfers per source site (0 = unlimited)")
	stateDir := flag.String("state-dir", "", "journal directory for crash-safe state (empty = no persistence)")
	scrubInterval := flag.Duration("scrub-interval", 0, "background integrity-scrub period (0 = off)")
	scrubRate := flag.Int64("scrub-rate", 8<<20, "scrubber disk-read cap in bytes/second (0 = unlimited)")
	antiEntropy := flag.Duration("anti-entropy-interval", 0, "digest-exchange period with producers and subscribers (0 = off)")
	quarMaxAge := flag.Duration("quarantine-max-age", 168*time.Hour, "sweep quarantined files older than this (0 = keep forever)")
	quarMaxCount := flag.Int("quarantine-max-count", 1024, "keep at most this many quarantined files (0 = unlimited)")
	parityK := flag.Int("parity-k", 0, "parity sidecar data blocks per file (0 = parity off)")
	parityM := flag.Int("parity-m", 0, "parity blocks per file; scrub heals up to this many damaged blocks locally")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long SIGTERM lets in-flight transfers finish")
	rcServe := flag.String("rc-serve", "", "also run an embedded replica catalog server on this address")
	rcSaveEvery := flag.Duration("rc-save-every", time.Minute, "embedded catalog snapshot/compaction interval (with -rc-serve and -state-dir)")
	rcShards := flag.Int("rc-shards", replica.DefaultShards, "embedded catalog shard count (with -rc-serve; rounded up to a power of two)")
	digestInterval := flag.Duration("digest-interval", 0, "RLI digest push period (0 = off)")
	digestTTL := flag.Duration("digest-ttl", 0, "RLI digest soft-state lifetime (0 = 3x -digest-interval)")
	digestFP := flag.Float64("digest-fp", 0, "bloom digest false-positive rate (0 = 0.01)")
	hedgeDeadline := flag.Duration("hedge-deadline", 0, "cold-start stall deadline before a pull hedges to a second replica (0 = 10s, negative = off)")
	breakerFailures := flag.Int("breaker-failures", 0, "consecutive failures that open a peer's circuit breaker (0 = 3)")
	breakerReopen := flag.Duration("breaker-reopen", 0, "base delay before an open breaker admits a probe (0 = 2s)")
	breakerReopenMax := flag.Duration("breaker-reopen-max", 0, "ceiling on the decorrelated reopen delay (0 = 60s)")
	breakerProbes := flag.Int("breaker-probes", 0, "probe successes that close a half-open breaker (0 = 1)")
	rpcMaxConns := flag.Int("rpc-max-conns", 0, "max concurrent GDMP server connections (0 = unlimited)")
	admitControl := flag.Int("admit-control", 0, "concurrent control-plane RPCs admitted (0 = 64)")
	admitBulk := flag.Int("admit-bulk", 0, "concurrent bulk data operations admitted (0 = 8)")
	admitBackground := flag.Int("admit-background", 0, "concurrent background RPCs admitted (0 = 2)")
	brownoutEnter := flag.Float64("brownout-enter", 0, "load signal that enters brownout, 0..1 (0 = 0.75)")
	brownoutExit := flag.Float64("brownout-exit", 0, "load signal that exits brownout (0 = enter/3)")
	maxQueuedPulls := flag.Int("max-queued-pulls", 0, "pull queue depth cap with priority-aware rejection (0 = unbounded)")
	flag.Parse()

	pol := retry.DefaultPolicy()
	pol.Attempts = *retryAttempts
	pol.BaseDelay = *retryBase
	pol.MaxDelay = *retryMax
	if err := run(params{
		name: *name, data: *data, rcAddr: *rcAddr, credPath: *credPath,
		caPath: *caPath, listen: *listen, ftpListen: *ftpListen,
		tape: *tape, poolCap: *poolCap, poolPolicy: *poolPolicy,
		prefetch: *prefetch, federation: *federation,
		auto: *auto, parallel: *parallel, tcpBuffer: *tcpBuffer,
		autoTune: *autoTune, gridmap: *gridmap, metricsAddr: *metricsAddr,
		retry: pol, transferAttempts: *transferAttempts,
		notifyFailures: *notifyFailures,
		pullWorkers:    *pullWorkers, perSource: *perSource,
		stateDir: *stateDir, drainTimeout: *drainTimeout,
		rcServe: *rcServe, rcSaveEvery: *rcSaveEvery, rcShards: *rcShards,
		digestInterval: *digestInterval, digestTTL: *digestTTL, digestFP: *digestFP,
		scrubInterval: *scrubInterval, scrubRate: *scrubRate,
		antiEntropy:   *antiEntropy,
		quarMaxAge:    *quarMaxAge,
		quarMaxCount:  *quarMaxCount,
		parityK:       *parityK,
		parityM:       *parityM,
		hedgeDeadline: *hedgeDeadline,
		health: health.Config{
			FailureThreshold: *breakerFailures,
			ReopenBase:       *breakerReopen,
			ReopenMax:        *breakerReopenMax,
			ProbeSuccesses:   *breakerProbes,
		},
		admission: admission.Config{
			ControlSlots:    *admitControl,
			BulkSlots:       *admitBulk,
			BackgroundSlots: *admitBackground,
			BrownoutEnter:   *brownoutEnter,
			BrownoutExit:    *brownoutExit,
		},
		rpcMaxConns:    *rpcMaxConns,
		maxQueuedPulls: *maxQueuedPulls,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "gdmpd:", err)
		os.Exit(1)
	}
}

type params struct {
	name, data, rcAddr, credPath, caPath string
	listen, ftpListen, tape, gridmap     string
	metricsAddr                          string
	poolCap                              int64
	poolPolicy                           string
	prefetch                             int
	federation, auto, autoTune           bool
	parallel, tcpBuffer                  int
	retry                                retry.Policy
	transferAttempts, notifyFailures     int
	pullWorkers, perSource               int
	stateDir                             string
	drainTimeout                         time.Duration
	rcServe                              string
	rcSaveEvery                          time.Duration
	rcShards                             int
	digestInterval, digestTTL            time.Duration
	digestFP                             float64
	scrubInterval, antiEntropy           time.Duration
	scrubRate                            int64
	quarMaxAge                           time.Duration
	quarMaxCount                         int
	parityK, parityM                     int
	hedgeDeadline                        time.Duration
	health                               health.Config
	admission                            admission.Config
	rpcMaxConns                          int
	maxQueuedPulls                       int
}

// serveMetrics exposes a registry at /metrics on addr, Prometheus-style.
// It returns the bound listener so the caller can close it on shutdown.
func serveMetrics(addr string, reg *obs.Registry) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WriteText(w)
	})
	go http.Serve(ln, mux)
	return ln, nil
}

func run(p params) error {
	if p.name == "" || p.data == "" || p.credPath == "" || p.caPath == "" {
		return fmt.Errorf("-name, -data, -cred and -ca are required")
	}
	if p.rcAddr == "" && p.rcServe == "" {
		return fmt.Errorf("-rc is required (or run the catalog here with -rc-serve)")
	}
	cred, err := gsi.LoadCredential(p.credPath)
	if err != nil {
		return err
	}
	anchor, err := gsi.LoadCertificate(p.caPath)
	if err != nil {
		return err
	}
	var acl *gsi.ACL
	if p.gridmap != "" {
		f, err := os.Open(p.gridmap)
		if err != nil {
			return err
		}
		acl, err = gsi.ParseGridmap(f)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		acl = gsi.NewACL()
		core.AllowSiteUseAll(acl)
		objrep.AllowServiceUseAll(acl)
		if p.rcServe != "" {
			replica.AllowCatalogUseAll(acl)
		}
	}

	// The embedded replica catalog (if any) must be up before the site
	// dials it.
	var rcSrv *replica.Server
	var rcCatalog *replica.Catalog
	var rcStore *replica.Store
	var snapStop, snapStopped chan struct{}
	if p.rcServe != "" {
		rcCatalog = replica.New(replica.Options{Shards: p.rcShards})
		if p.stateDir != "" {
			rcDir := filepath.Join(p.stateDir, "rc")
			if err := os.MkdirAll(rcDir, 0o755); err != nil {
				return err
			}
			rcStore, err = replica.OpenStore(rcDir, rcCatalog, replica.StoreOptions{})
			if err != nil {
				return fmt.Errorf("open embedded catalog store: %w", err)
			}
			st := rcCatalog.Stats()
			if legacy := filepath.Join(p.stateDir, "rc.snap"); st.Files+st.Collections == 0 {
				// One-time import of the pre-store single-file snapshot;
				// compaction adopts it into per-shard snapshots.
				if err := rcCatalog.LoadFile(legacy); err == nil {
					if err := rcStore.Compact(); err != nil {
						return fmt.Errorf("adopt legacy catalog snapshot: %w", err)
					}
					st = rcCatalog.Stats()
					log.Printf("embedded catalog: imported legacy %s (%d files, %d replicas)",
						legacy, st.Files, st.Replicas)
				} else if !os.IsNotExist(err) {
					return fmt.Errorf("load embedded catalog snapshot: %w", err)
				}
			} else {
				log.Printf("embedded catalog: recovered %s (%d files, %d replicas, %d shards)",
					rcDir, st.Files, st.Replicas, rcCatalog.ShardCount())
			}
		}
		rcSrv = replica.NewServer(rcCatalog, cred, []*gsi.Certificate{anchor}, acl)
		rcLn, err := net.Listen("tcp", p.rcServe)
		if err != nil {
			return err
		}
		go rcSrv.Serve(rcLn)
		defer rcSrv.Close()
		log.Printf("embedded replica catalog on %s (%d shards)", rcLn.Addr(), rcCatalog.ShardCount())
		if p.rcAddr == "" {
			p.rcAddr = rcLn.Addr().String()
		}
		if rcStore != nil && p.rcSaveEvery > 0 {
			snapStop, snapStopped = make(chan struct{}), make(chan struct{})
			go func() {
				defer close(snapStopped)
				t := time.NewTicker(p.rcSaveEvery)
				defer t.Stop()
				for {
					select {
					case <-t.C:
						if _, err := rcStore.MaybeCompact(); err != nil {
							log.Printf("embedded catalog compact: %v", err)
						}
					case <-snapStop:
						return
					}
				}
			}()
		}
	}

	cfg := core.Config{
		Name:            p.name,
		DataDir:         p.data,
		Cred:            cred,
		TrustRoots:      []*gsi.Certificate{anchor},
		ACL:             acl,
		ReplicaCatalog:  p.rcAddr,
		AutoReplicate:   p.auto,
		Parallelism:     p.parallel,
		BufferBytes:     p.tcpBuffer,
		AutoTuneBuffers: p.autoTune,
		GDMPListen:      p.listen,
		FTPListen:       p.ftpListen,
		StateDir:        p.stateDir,
		Logger:          log.Default(),

		Retry:                  p.retry,
		TransferAttempts:       p.transferAttempts,
		NotifyFailureThreshold: p.notifyFailures,
		PullWorkers:            p.pullWorkers,
		PerSourceLimit:         p.perSource,

		ScrubInterval:       p.scrubInterval,
		ScrubRateBytes:      p.scrubRate,
		AntiEntropyInterval: p.antiEntropy,
		QuarantineMaxAge:    p.quarMaxAge,
		QuarantineMaxCount:  p.quarMaxCount,
		ParityK:             p.parityK,
		ParityM:             p.parityM,

		DigestInterval: p.digestInterval,
		DigestTTL:      p.digestTTL,
		DigestFPRate:   p.digestFP,

		Health:        p.health,
		HedgeDeadline: p.hedgeDeadline,

		Admission:      p.admission,
		RPCMaxConns:    p.rpcMaxConns,
		MaxQueuedPulls: p.maxQueuedPulls,
	}
	cfg.PrefetchThreshold = p.prefetch
	if p.tape != "" {
		var policy mss.EvictionPolicy
		switch p.poolPolicy {
		case "", "lru":
			policy = mss.LRU
		case "fifo":
			policy = mss.FIFO
		default:
			return fmt.Errorf("unknown -pool-policy %q (want lru or fifo)", p.poolPolicy)
		}
		m, err := mss.New(mss.Config{
			TapeDir:      p.tape,
			PoolDir:      p.data,
			PoolCapacity: p.poolCap,
			Policy:       policy,
		})
		if err != nil {
			return err
		}
		cfg.MSS = m
	}
	if p.federation {
		cfg.Federation = objectstore.NewFederation()
	}

	site, err := core.NewSite(cfg)
	if err != nil {
		return err
	}
	if p.federation {
		if err := objrep.EnableService(site); err != nil {
			return err
		}
	}
	if p.metricsAddr != "" {
		mln, err := serveMetrics(p.metricsAddr, site.Metrics())
		if err != nil {
			site.Close()
			return err
		}
		defer mln.Close()
		log.Printf("metrics at http://%s/metrics", mln.Addr())
	}
	if rs := site.Recovery(); rs != (core.RecoveryStats{}) {
		log.Printf("recovery: %d files restored, %d notices requeued, %d pulls requeued, %d parts resumable, %d quarantined",
			rs.FilesRestored, rs.NoticesRequeued, rs.PullsRequeued, rs.PartsResumed, rs.Quarantined)
	}
	log.Printf("GDMP site %s up: control %s, data %s, catalog %s",
		site.Name(), site.Addr(), site.DataAddr(), p.rcAddr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	var err2 error
	if s == syscall.SIGTERM && p.drainTimeout > 0 {
		// Graceful drain: stop admissions, give in-flight transfers until
		// the deadline, journal the rest as pending for the next start.
		log.Printf("received %v, draining (up to %v)", s, p.drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), p.drainTimeout)
		abandoned, derr := site.Drain(ctx)
		cancel()
		if derr != nil {
			log.Printf("drain: %d transfers abandoned (journaled as pending): %v", len(abandoned), derr)
		}
	} else {
		log.Printf("received %v, shutting down", s)
		err2 = site.Close()
	}
	// Stop (and join) the periodic compaction goroutine before the final
	// compact, so two never race on the same store.
	if snapStop != nil {
		close(snapStop)
		<-snapStopped
	}
	if rcStore != nil {
		if err := rcStore.Close(); err != nil {
			log.Printf("close embedded catalog store: %v", err)
		} else {
			log.Printf("embedded catalog compacted under %s", filepath.Join(p.stateDir, "rc"))
		}
	}
	return err2
}
