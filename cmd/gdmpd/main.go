// Command gdmpd runs a complete GDMP site daemon (Section 4): the GDMP
// server with its subscription, notification, catalog, and staging
// services, plus the site's GridFTP server over the local disk pool,
// registered against the Grid's central replica catalog.
//
// Usage:
//
//	gdmpd -name cern.ch -data /pool -rc replicad.host:39000 \
//	      -cred certs/cern.pem -ca certs/ca.pem \
//	      [-listen :38000] [-ftp-listen :2811] [-metrics :9090] \
//	      [-tape /tape -pool-capacity 1073741824] [-federation] \
//	      [-auto] [-parallel 4] [-tcp-buffer 1048576] [-gridmap gridmap] \
//	      [-retry-attempts 3 -retry-base 50ms -retry-max 2s] \
//	      [-transfer-attempts 3] [-notify-failures 3]
//
// With -tape, the site runs a Mass Storage System: the pool acts as a cache
// and files are staged from the tape directory on demand. With
// -federation, the site maintains an object database federation and can
// replicate "objectivity" files (arrivals are attached automatically).
// With -metrics, the daemon serves its instrumentation registry in the
// Prometheus text exposition format at http://<addr>/metrics (the same
// dump `gdmp stats` fetches over the authenticated control channel).
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gdmp/internal/core"
	"gdmp/internal/gsi"
	"gdmp/internal/mss"
	"gdmp/internal/objectstore"
	"gdmp/internal/objrep"
	"gdmp/internal/obs"
	"gdmp/internal/retry"
)

func main() {
	name := flag.String("name", "", "site name, e.g. cern.ch (required)")
	data := flag.String("data", "", "disk pool directory (required)")
	rcAddr := flag.String("rc", "", "replica catalog address (required)")
	credPath := flag.String("cred", "", "site credential file (required)")
	caPath := flag.String("ca", "", "trust anchor certificate (required)")
	listen := flag.String("listen", ":38000", "GDMP control address")
	ftpListen := flag.String("ftp-listen", ":2811", "GridFTP data address")
	tape := flag.String("tape", "", "tape directory (enables the MSS)")
	poolCap := flag.Int64("pool-capacity", 1<<30, "disk pool capacity in bytes (with -tape)")
	federation := flag.Bool("federation", false, "run an object database federation")
	auto := flag.Bool("auto", false, "auto-replicate files on notification")
	parallel := flag.Int("parallel", 2, "parallel TCP streams for transfers")
	tcpBuffer := flag.Int("tcp-buffer", 0, "TCP socket buffer size (0 = OS default)")
	autoTune := flag.Bool("auto-tune", false, "negotiate TCP buffers per source (RTT x bandwidth)")
	gridmap := flag.String("gridmap", "", "authorization gridmap (default: allow all)")
	metricsAddr := flag.String("metrics", "", "serve /metrics over HTTP on this address (empty = off)")
	retryAttempts := flag.Int("retry-attempts", 3, "attempt cap for retried network operations")
	retryBase := flag.Duration("retry-base", 50*time.Millisecond, "initial backoff between retries")
	retryMax := flag.Duration("retry-max", 2*time.Second, "backoff ceiling between retries")
	transferAttempts := flag.Int("transfer-attempts", 3, "restart attempts per file transfer")
	notifyFailures := flag.Int("notify-failures", 3, "consecutive notification failures before a subscriber is suspect")
	pullWorkers := flag.Int("pull-workers", 4, "concurrent pull replications")
	perSource := flag.Int("per-source", 0, "max concurrent transfers per source site (0 = unlimited)")
	flag.Parse()

	pol := retry.DefaultPolicy()
	pol.Attempts = *retryAttempts
	pol.BaseDelay = *retryBase
	pol.MaxDelay = *retryMax
	if err := run(params{
		name: *name, data: *data, rcAddr: *rcAddr, credPath: *credPath,
		caPath: *caPath, listen: *listen, ftpListen: *ftpListen,
		tape: *tape, poolCap: *poolCap, federation: *federation,
		auto: *auto, parallel: *parallel, tcpBuffer: *tcpBuffer,
		autoTune: *autoTune, gridmap: *gridmap, metricsAddr: *metricsAddr,
		retry: pol, transferAttempts: *transferAttempts,
		notifyFailures: *notifyFailures,
		pullWorkers:    *pullWorkers, perSource: *perSource,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "gdmpd:", err)
		os.Exit(1)
	}
}

type params struct {
	name, data, rcAddr, credPath, caPath string
	listen, ftpListen, tape, gridmap     string
	metricsAddr                          string
	poolCap                              int64
	federation, auto, autoTune           bool
	parallel, tcpBuffer                  int
	retry                                retry.Policy
	transferAttempts, notifyFailures     int
	pullWorkers, perSource               int
}

// serveMetrics exposes a registry at /metrics on addr, Prometheus-style.
// It returns the bound listener so the caller can close it on shutdown.
func serveMetrics(addr string, reg *obs.Registry) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WriteText(w)
	})
	go http.Serve(ln, mux)
	return ln, nil
}

func run(p params) error {
	if p.name == "" || p.data == "" || p.rcAddr == "" || p.credPath == "" || p.caPath == "" {
		return fmt.Errorf("-name, -data, -rc, -cred and -ca are required")
	}
	cred, err := gsi.LoadCredential(p.credPath)
	if err != nil {
		return err
	}
	anchor, err := gsi.LoadCertificate(p.caPath)
	if err != nil {
		return err
	}
	var acl *gsi.ACL
	if p.gridmap != "" {
		f, err := os.Open(p.gridmap)
		if err != nil {
			return err
		}
		acl, err = gsi.ParseGridmap(f)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		acl = gsi.NewACL()
		core.AllowSiteUseAll(acl)
		objrep.AllowServiceUseAll(acl)
	}

	cfg := core.Config{
		Name:            p.name,
		DataDir:         p.data,
		Cred:            cred,
		TrustRoots:      []*gsi.Certificate{anchor},
		ACL:             acl,
		ReplicaCatalog:  p.rcAddr,
		AutoReplicate:   p.auto,
		Parallelism:     p.parallel,
		BufferBytes:     p.tcpBuffer,
		AutoTuneBuffers: p.autoTune,
		GDMPListen:      p.listen,
		FTPListen:       p.ftpListen,
		Logger:          log.Default(),

		Retry:                  p.retry,
		TransferAttempts:       p.transferAttempts,
		NotifyFailureThreshold: p.notifyFailures,
		PullWorkers:            p.pullWorkers,
		PerSourceLimit:         p.perSource,
	}
	if p.tape != "" {
		m, err := mss.New(mss.Config{
			TapeDir:      p.tape,
			PoolDir:      p.data,
			PoolCapacity: p.poolCap,
		})
		if err != nil {
			return err
		}
		cfg.MSS = m
	}
	if p.federation {
		cfg.Federation = objectstore.NewFederation()
	}

	site, err := core.NewSite(cfg)
	if err != nil {
		return err
	}
	if p.federation {
		if err := objrep.EnableService(site); err != nil {
			return err
		}
	}
	if p.metricsAddr != "" {
		mln, err := serveMetrics(p.metricsAddr, site.Metrics())
		if err != nil {
			site.Close()
			return err
		}
		defer mln.Close()
		log.Printf("metrics at http://%s/metrics", mln.Addr())
	}
	log.Printf("GDMP site %s up: control %s, data %s, catalog %s",
		site.Name(), site.Addr(), site.DataAddr(), p.rcAddr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	log.Printf("received %v, shutting down", s)
	return site.Close()
}
