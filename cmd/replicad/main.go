// Command replicad runs the central Replica Catalog server (Section 3.1):
// the Grid-wide mapping from logical file names to physical replica
// locations, with collections and attribute metadata, behind the
// authenticated Request Manager. GDMP deployments run exactly one of these
// per Grid, as the paper does with its single LDAP server.
//
// The catalog is LFN-sharded internally (-shards, rounded up to a power of
// two) so concurrent lookups and mutations spread over per-shard locks,
// and the server co-hosts the Replica Location Index: sites periodically
// push bloom digests of their Local Replica Catalogs (soft state, expiring
// after -rli-ttl without a refresh), and peers ask it which sites might
// hold an LFN.
//
// Usage:
//
//	replicad -listen :39000 -cred certs/replicad.pem -ca certs/ca.pem \
//	         [-state-dir /var/lib/replicad] [-shards 64] [-rli-ttl 5m] \
//	         [-snapshot catalog.snap] [-gridmap gridmap] [-save-every 1m]
//
// With -state-dir, the catalog is journaled: every mutation is appended to
// a write-ahead log before it is acknowledged, and compaction freezes the
// state into per-shard snapshot generations. A -snapshot file from an
// older deployment is imported once, when the journaled store is still
// empty. Without -state-dir, -snapshot alone gives the legacy behavior:
// load at startup, persist every -save-every and on shutdown. Without
// -gridmap, every authenticated identity may use the catalog.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gdmp/internal/gsi"
	"gdmp/internal/replica"
)

func main() {
	listen := flag.String("listen", ":39000", "address to listen on")
	credPath := flag.String("cred", "", "server credential file (required)")
	caPath := flag.String("ca", "", "trust anchor certificate (required)")
	stateDir := flag.String("state-dir", "", "journaled store directory (crash-safe persistence)")
	shards := flag.Int("shards", replica.DefaultShards, "catalog shard count (rounded up to a power of two)")
	rliTTL := flag.Duration("rli-ttl", replica.DefaultRLITTL, "RLI digest soft-state lifetime")
	snapshot := flag.String("snapshot", "", "legacy catalog snapshot file (load + persist without -state-dir)")
	gridmap := flag.String("gridmap", "", "authorization gridmap file (default: allow all)")
	saveEvery := flag.Duration("save-every", time.Minute, "legacy periodic snapshot interval")
	flag.Parse()

	if err := run(*listen, *credPath, *caPath, *stateDir, *snapshot, *gridmap, *shards, *rliTTL, *saveEvery); err != nil {
		fmt.Fprintln(os.Stderr, "replicad:", err)
		os.Exit(1)
	}
}

func run(listen, credPath, caPath, stateDir, snapshot, gridmap string, shards int, rliTTL, saveEvery time.Duration) error {
	if credPath == "" || caPath == "" {
		return fmt.Errorf("-cred and -ca are required")
	}
	cred, err := gsi.LoadCredential(credPath)
	if err != nil {
		return err
	}
	root, err := gsi.LoadCertificate(caPath)
	if err != nil {
		return err
	}

	var acl *gsi.ACL
	if gridmap != "" {
		f, err := os.Open(gridmap)
		if err != nil {
			return err
		}
		acl, err = gsi.ParseGridmap(f)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		acl = gsi.NewACL()
		replica.AllowCatalogUseAll(acl)
	}

	catalog := replica.New(replica.Options{Shards: shards})
	var store *replica.Store
	if stateDir != "" {
		if err := os.MkdirAll(stateDir, 0o755); err != nil {
			return err
		}
		store, err = replica.OpenStore(stateDir, catalog, replica.StoreOptions{})
		if err != nil {
			return err
		}
		st := catalog.Stats()
		if st.Files+st.Collections == 0 && snapshot != "" {
			// One-time import of a legacy single-file snapshot into the
			// journaled store; compaction adopts it into shard snapshots.
			if err := catalog.LoadFile(snapshot); err == nil {
				if err := store.Compact(); err != nil {
					return fmt.Errorf("adopt legacy snapshot: %w", err)
				}
				st = catalog.Stats()
				log.Printf("imported legacy snapshot %s: %d files, %d replicas, %d collections",
					snapshot, st.Files, st.Replicas, st.Collections)
			} else if !os.IsNotExist(err) {
				return fmt.Errorf("load legacy snapshot: %w", err)
			}
		} else {
			log.Printf("recovered store %s: %d files, %d replicas, %d collections (%d shards)",
				stateDir, st.Files, st.Replicas, st.Collections, catalog.ShardCount())
		}
	} else if snapshot != "" {
		if err := catalog.LoadFile(snapshot); err == nil {
			st := catalog.Stats()
			log.Printf("loaded snapshot %s: %d files, %d replicas, %d collections",
				snapshot, st.Files, st.Replicas, st.Collections)
		} else if !os.IsNotExist(err) {
			return fmt.Errorf("load snapshot: %w", err)
		}
	}

	srv := replica.NewServerWithRLI(catalog, replica.NewRLI(rliTTL, nil), cred, []*gsi.Certificate{root}, acl)
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	log.Printf("replica catalog %s listening on %s (%d shards)",
		cred.Identity(), ln.Addr(), catalog.ShardCount())

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		if saveEvery <= 0 {
			return
		}
		t := time.NewTicker(saveEvery)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				if store != nil {
					if _, err := store.MaybeCompact(); err != nil {
						log.Printf("compact: %v", err)
					}
				} else if snapshot != "" {
					if err := catalog.SaveFile(snapshot); err != nil {
						log.Printf("snapshot: %v", err)
					}
				}
			}
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	select {
	case err := <-errCh:
		close(stop)
		<-done
		return err
	case s := <-sig:
		log.Printf("received %v, shutting down", s)
	}
	srv.Close()
	close(stop)
	<-done
	if store != nil {
		if err := store.Close(); err != nil {
			return fmt.Errorf("close store: %w", err)
		}
		log.Printf("catalog compacted into %s", stateDir)
	} else if snapshot != "" {
		if err := catalog.SaveFile(snapshot); err != nil {
			return fmt.Errorf("final snapshot: %w", err)
		}
		log.Printf("catalog persisted to %s", snapshot)
	}
	return nil
}
