// Command replicad runs the central Replica Catalog server (Section 3.1):
// the Grid-wide mapping from logical file names to physical replica
// locations, with collections and attribute metadata, behind the
// authenticated Request Manager. GDMP deployments run exactly one of these
// per Grid, as the paper does with its single LDAP server.
//
// Usage:
//
//	replicad -listen :39000 -cred certs/replicad.pem -ca certs/ca.pem \
//	         [-snapshot catalog.snap] [-gridmap gridmap] [-save-every 1m]
//
// With -snapshot, the catalog is loaded at startup (if the file exists) and
// persisted periodically and on shutdown. Without -gridmap, every
// authenticated identity may use the catalog.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gdmp/internal/gsi"
	"gdmp/internal/replica"
)

func main() {
	listen := flag.String("listen", ":39000", "address to listen on")
	credPath := flag.String("cred", "", "server credential file (required)")
	caPath := flag.String("ca", "", "trust anchor certificate (required)")
	snapshot := flag.String("snapshot", "", "catalog snapshot file (load + persist)")
	gridmap := flag.String("gridmap", "", "authorization gridmap file (default: allow all)")
	saveEvery := flag.Duration("save-every", time.Minute, "periodic snapshot interval")
	flag.Parse()

	if err := run(*listen, *credPath, *caPath, *snapshot, *gridmap, *saveEvery); err != nil {
		fmt.Fprintln(os.Stderr, "replicad:", err)
		os.Exit(1)
	}
}

func run(listen, credPath, caPath, snapshot, gridmap string, saveEvery time.Duration) error {
	if credPath == "" || caPath == "" {
		return fmt.Errorf("-cred and -ca are required")
	}
	cred, err := gsi.LoadCredential(credPath)
	if err != nil {
		return err
	}
	root, err := gsi.LoadCertificate(caPath)
	if err != nil {
		return err
	}

	var acl *gsi.ACL
	if gridmap != "" {
		f, err := os.Open(gridmap)
		if err != nil {
			return err
		}
		acl, err = gsi.ParseGridmap(f)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		acl = gsi.NewACL()
		replica.AllowCatalogUseAll(acl)
	}

	catalog := replica.NewCatalog()
	if snapshot != "" {
		if err := catalog.LoadFile(snapshot); err == nil {
			st := catalog.Stats()
			log.Printf("loaded snapshot %s: %d files, %d replicas, %d collections",
				snapshot, st.Files, st.Replicas, st.Collections)
		} else if !os.IsNotExist(err) {
			return fmt.Errorf("load snapshot: %w", err)
		}
	}

	srv := replica.NewServer(catalog, cred, []*gsi.Certificate{root}, acl)
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	log.Printf("replica catalog %s listening on %s", cred.Identity(), ln.Addr())

	if snapshot != "" && saveEvery > 0 {
		go func() {
			for range time.Tick(saveEvery) {
				if err := catalog.SaveFile(snapshot); err != nil {
					log.Printf("snapshot: %v", err)
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	select {
	case err := <-errCh:
		return err
	case s := <-sig:
		log.Printf("received %v, shutting down", s)
	}
	srv.Close()
	if snapshot != "" {
		if err := catalog.SaveFile(snapshot); err != nil {
			return fmt.Errorf("final snapshot: %w", err)
		}
		log.Printf("catalog persisted to %s", snapshot)
	}
	return nil
}
