// Command objcopier is the object copier tool of Section 5: it reads
// selected objects from a local federation and writes them into a new,
// self-contained database file ready for wide-area transfer.
//
// Usage:
//
//	objcopier -federation fed.cat -oids 1:1,1:2,2:7 -out extract.odb -dbid 2147483649
//	objcopier -federation fed.cat -oids-file selection.txt -out extract.odb -dbid ...
//
// The federation catalog is the file written by a federation Save (see
// internal/objectstore). -oids-file lists one "db:slot" per line.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"gdmp/internal/objectstore"
	"gdmp/internal/objrep"
)

func main() {
	fedPath := flag.String("federation", "", "federation catalog file (required)")
	oidsArg := flag.String("oids", "", "comma-separated db:slot list")
	oidsFile := flag.String("oids-file", "", "file with one db:slot per line")
	out := flag.String("out", "", "output database file (required)")
	dbid := flag.Uint("dbid", 0, "database id for the new file (required, nonzero)")
	flag.Parse()

	if err := run(*fedPath, *oidsArg, *oidsFile, *out, uint32(*dbid)); err != nil {
		fmt.Fprintln(os.Stderr, "objcopier:", err)
		os.Exit(1)
	}
}

func run(fedPath, oidsArg, oidsFile, out string, dbid uint32) error {
	if fedPath == "" || out == "" || dbid == 0 {
		return fmt.Errorf("-federation, -out and a nonzero -dbid are required")
	}
	var oids []objectstore.OID
	if oidsArg != "" {
		for _, s := range strings.Split(oidsArg, ",") {
			oid, err := objectstore.ParseOID(strings.TrimSpace(s))
			if err != nil {
				return err
			}
			oids = append(oids, oid)
		}
	}
	if oidsFile != "" {
		f, err := os.Open(oidsFile)
		if err != nil {
			return err
		}
		defer f.Close()
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			oid, err := objectstore.ParseOID(line)
			if err != nil {
				return err
			}
			oids = append(oids, oid)
		}
		if err := sc.Err(); err != nil {
			return err
		}
	}
	if len(oids) == 0 {
		return fmt.Errorf("no objects selected (use -oids or -oids-file)")
	}

	fed, err := objectstore.LoadFederation(fedPath)
	if err != nil {
		return err
	}
	defer fed.Close()

	stats, mapping, err := objrep.CopyObjects(fed, oids, out, dbid)
	if err != nil {
		return err
	}
	fmt.Printf("copied %d objects (%d bytes) into %s (db %d)\n",
		stats.Objects, stats.Bytes, out, dbid)
	for orig, fresh := range mapping {
		fmt.Printf("  %s -> %s\n", orig, fresh)
	}
	return nil
}
