// Command gdmp is the GDMP client: the command-line face of the four
// services of Section 4.1 plus catalog queries.
//
// Usage:
//
//	gdmp -cred user.pem -ca ca.pem <subcommand> [args]
//
//	ping        <site-ctl-addr>                  check a site is alive
//	status      <site-ctl-addr>                  transfer counters of a site
//	stats       <site-ctl-addr>                  full metrics dump of a site
//	catalog     <site-ctl-addr>                  dump a site's file catalog
//	fsck        <site-ctl-addr>                  full on-demand integrity scrub
//	subscribe   <producer-ctl> <myname> <myctl>  subscribe a site to a producer
//	unsubscribe <producer-ctl> <myname>
//	stage       <site-ctl-addr> <lfn>            stage a file onto disk
//	locations   -rc <addr> <lfn>                 all replicas of a file
//	which       -rc <addr> <lfn>                 RLI: sites that might hold a file
//	rli         -rc <addr>                       RLI: live site digests
//	query       -rc <addr> <filter>              LDAP-style catalog search
//	register    -rc <addr> <lfn> <pfn>           record a replica in the catalog
//	fetch       <pfn> <local-path> [-p N]        reliable GridFTP download
//	fetch-lfn   -rc <addr> <lfn> <local-path>    resolve via catalog, then fetch
//	pull        -rc <addr> <dest-dir> <lfn>...   concurrent multi-file fetch
//
// fetch takes a gridftp://host:port/path physical name and performs the
// Data Mover's restartable, CRC-verified retrieval; fetch-lfn resolves a
// logical name through the replica catalog first. pull fetches a batch of
// logical files through the replication scheduler: -pull-workers bounds
// concurrency and -per-source caps simultaneous transfers per source.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"gdmp/internal/core"
	"gdmp/internal/gridftp"
	"gdmp/internal/gsi"
	"gdmp/internal/replica"
	"gdmp/internal/retry"
	"gdmp/internal/rpc"
	"gdmp/internal/xfer"
)

func main() {
	credPath := flag.String("cred", "", "client credential file (required)")
	caPath := flag.String("ca", "", "trust anchor certificate (required)")
	rcAddr := flag.String("rc", "", "replica catalog address (for locations/query)")
	parallel := flag.Int("p", 2, "parallel streams (for fetch)")
	attempts := flag.Int("attempts", 3, "restart attempts for fetch/fetch-lfn")
	retryBase := flag.Duration("retry-base", 50*time.Millisecond, "initial backoff between restart attempts")
	timeout := flag.Duration("timeout", 0, "overall deadline for the command (0 = none)")
	pullWorkers := flag.Int("pull-workers", 4, "concurrent transfers for pull")
	perSource := flag.Int("per-source", 0, "max concurrent pull transfers per source (0 = unlimited)")
	flag.Parse()

	pol := retry.DefaultPolicy()
	pol.Attempts = *attempts
	pol.BaseDelay = *retryBase
	// An interrupt (or -timeout expiry) cancels the context, which aborts
	// in-flight RPCs and transfers instead of letting them run out.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	if err := run(ctx, *credPath, *caPath, *rcAddr, *parallel, *pullWorkers, *perSource, pol, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "gdmp:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, credPath, caPath, rcAddr string, parallel, pullWorkers, perSource int, pol retry.Policy, args []string) error {
	if credPath == "" || caPath == "" {
		return fmt.Errorf("-cred and -ca are required")
	}
	if len(args) < 1 {
		return fmt.Errorf("missing subcommand")
	}
	cred, err := gsi.LoadCredential(credPath)
	if err != nil {
		return err
	}
	anchor, err := gsi.LoadCertificate(caPath)
	if err != nil {
		return err
	}
	roots := []*gsi.Certificate{anchor}

	call := func(addr, method string, enc *rpc.Encoder) (*rpc.Decoder, error) {
		cl, err := rpc.DialContext(ctx, addr, cred, roots, rpc.WithTimeout(30*time.Second))
		if err != nil {
			return nil, err
		}
		defer cl.Close()
		return cl.CallContext(ctx, method, enc)
	}

	switch args[0] {
	case "ping":
		if len(args) != 2 {
			return fmt.Errorf("usage: ping <site-ctl-addr>")
		}
		d, err := call(args[1], core.MethodPing, nil)
		if err != nil {
			return err
		}
		fmt.Printf("%s is alive (site %q)\n", args[1], d.String())
		return d.Finish()

	case "catalog":
		if len(args) != 2 {
			return fmt.Errorf("usage: catalog <site-ctl-addr>")
		}
		d, err := call(args[1], core.MethodCatalog, nil)
		if err != nil {
			return err
		}
		n := d.Uint32()
		fmt.Printf("%d files:\n", n)
		for i := uint32(0); i < n; i++ {
			lfn := d.String()
			path := d.String()
			size := d.Int64()
			crc := d.String()
			ftype := d.String()
			state := d.String()
			if err := d.Err(); err != nil {
				return err
			}
			fmt.Printf("  %s  path=%s size=%d crc=%s type=%s state=%s\n",
				lfn, path, size, crc, ftype, state)
		}
		return d.Finish()

	case "subscribe":
		if len(args) != 4 {
			return fmt.Errorf("usage: subscribe <producer-ctl> <myname> <myctl>")
		}
		var e rpc.Encoder
		e.String(args[2])
		e.String(args[3])
		if _, err := call(args[1], core.MethodSubscribe, &e); err != nil {
			return err
		}
		fmt.Printf("%s subscribed to %s\n", args[2], args[1])
		return nil

	case "unsubscribe":
		if len(args) != 3 {
			return fmt.Errorf("usage: unsubscribe <producer-ctl> <myname>")
		}
		var e rpc.Encoder
		e.String(args[2])
		if _, err := call(args[1], core.MethodUnsubscribe, &e); err != nil {
			return err
		}
		fmt.Printf("%s unsubscribed from %s\n", args[2], args[1])
		return nil

	case "stage":
		if len(args) != 3 {
			return fmt.Errorf("usage: stage <site-ctl-addr> <lfn>")
		}
		var e rpc.Encoder
		e.String(args[2])
		if _, err := call(args[1], core.MethodStage, &e); err != nil {
			return err
		}
		fmt.Printf("%s staged at %s\n", args[2], args[1])
		return nil

	case "status":
		if len(args) != 2 {
			return fmt.Errorf("usage: status <site-ctl-addr>")
		}
		d, err := call(args[1], core.MethodStatus, nil)
		if err != nil {
			return err
		}
		name := d.String()
		files := d.Uint64()
		subs := d.Uint64()
		ok := d.Uint64()
		failed := d.Uint64()
		bytes := d.Int64()
		pending := d.Uint64()
		restored := d.Uint64()
		requeued := d.Uint64()
		quarantined := d.Uint64()
		notices := d.Uint64()
		journal := d.String()
		// The pool-cache block trails the payload; an older daemon simply
		// does not send it, so only decode what is actually there.
		var poolUsed, poolCap, poolHits, poolMisses, poolEvictions int64
		if d.Remaining() > 0 {
			poolUsed = d.Int64()
			poolCap = d.Int64()
			poolHits = d.Int64()
			poolMisses = d.Int64()
			poolEvictions = d.Int64()
		}
		var paritySC, parityRebuilds, parityFallbacks, bytesLocal, bytesRepulled int64
		if d.Remaining() > 0 {
			paritySC = d.Int64()
			parityRebuilds = d.Int64()
			parityFallbacks = d.Int64()
			bytesLocal = d.Int64()
			bytesRepulled = d.Int64()
		}
		var digestGen, digestPushes, digestLFNs, rliQueries, rliFPs, locateP99 int64
		if d.Remaining() > 0 {
			digestGen = d.Int64()
			digestPushes = d.Int64()
			digestLFNs = d.Int64()
			rliQueries = d.Int64()
			rliFPs = d.Int64()
			locateP99 = d.Int64()
		}
		// The per-peer health block is the newest trailing generation: a
		// count word, then one row per peer the site has pulled from or
		// dialed.
		type peerRow struct {
			peer, breaker        string
			fails, bwKbps, latUs int64
			transition           int64
		}
		var peers []peerRow
		if d.Remaining() > 0 {
			n := int(d.Uint64())
			for i := 0; i < n && d.Remaining() > 0; i++ {
				peers = append(peers, peerRow{
					peer: d.String(), breaker: d.String(),
					fails: d.Int64(), bwKbps: d.Int64(),
					latUs: d.Int64(), transition: d.Int64(),
				})
			}
		}
		// The overload-protection block trails the health rows.
		var brownoutActive bool
		var loadMilli, admAdmitted, admRejected, admExpired, admShed int64
		var brownEntered, brownDeferred int64
		if d.Remaining() > 0 {
			brownoutActive = d.Uint8() != 0
			loadMilli = d.Int64()
			admAdmitted = d.Int64()
			admRejected = d.Int64()
			admExpired = d.Int64()
			admShed = d.Int64()
			brownEntered = d.Int64()
			brownDeferred = d.Int64()
		}
		if err := d.Finish(); err != nil {
			return err
		}
		fmt.Printf("site %s: %d local files, %d subscribers\n", name, files, subs)
		fmt.Printf("transfers: %d ok, %d failed, %d bytes replicated, %d pending\n",
			ok, failed, bytes, pending)
		if restored+requeued+quarantined+notices > 0 {
			fmt.Printf("last restart: %d files restored, %d pulls requeued, %d notices requeued, %d quarantined\n",
				restored, requeued, notices, quarantined)
		}
		if journal != "" {
			fmt.Printf("journal: %s\n", journal)
		}
		if poolCap > 0 {
			rate := 0.0
			if poolHits+poolMisses > 0 {
				rate = float64(poolHits) / float64(poolHits+poolMisses)
			}
			fmt.Printf("pool: %d/%d bytes, %.1f%% hit rate (%d hits, %d misses), %d evictions\n",
				poolUsed, poolCap, 100*rate, poolHits, poolMisses, poolEvictions)
		}
		if paritySC+parityRebuilds+parityFallbacks+bytesLocal+bytesRepulled > 0 {
			fmt.Printf("parity: %d sidecars, %d local rebuilds (%d bytes), %d fallbacks, %d bytes re-pulled\n",
				paritySC, parityRebuilds, bytesLocal, parityFallbacks, bytesRepulled)
		}
		if digestGen+digestPushes+rliQueries > 0 {
			fmt.Printf("rls: digest gen %d (%d LFNs, %d pushes), %d RLI queries (%d false positives), locate p99 %dus\n",
				digestGen, digestLFNs, digestPushes, rliQueries, rliFPs, locateP99)
		}
		if len(peers) > 0 {
			fmt.Printf("peer health:\n")
			for _, p := range peers {
				line := fmt.Sprintf("  %s: breaker %s", p.peer, p.breaker)
				if p.fails > 0 {
					line += fmt.Sprintf(", %d consecutive failures", p.fails)
				}
				if p.bwKbps > 0 {
					line += fmt.Sprintf(", %.1f Mbps", float64(p.bwKbps)/1000)
				}
				if p.latUs > 0 {
					line += fmt.Sprintf(", rtt %dus", p.latUs)
				}
				if p.transition != 0 {
					line += ", since " + time.Unix(0, p.transition).Format(time.RFC3339)
				}
				fmt.Println(line)
			}
		}
		if admAdmitted+admRejected > 0 || brownoutActive {
			mode := "normal"
			if brownoutActive {
				mode = "brownout"
			}
			fmt.Printf("admission: %s (load %.1f%%), %d admitted, %d rejected (%d expired, %d shed)\n",
				mode, float64(loadMilli)/10, admAdmitted, admRejected, admExpired, admShed)
			if brownEntered > 0 {
				fmt.Printf("brownout: entered %d times, %d background work units deferred\n",
					brownEntered, brownDeferred)
			}
		}
		return nil

	case "fsck":
		// fsck <site-ctl-addr>: run a full scrub pass on the site and
		// report what it found and repaired.
		if len(args) != 2 {
			return fmt.Errorf("usage: fsck <site-ctl-addr>")
		}
		d, err := call(args[1], core.MethodFsck, nil)
		if err != nil {
			return err
		}
		scanned := d.Uint64()
		bytes := d.Int64()
		corrupt := d.Uint64()
		missing := d.Uint64()
		repairs := d.Uint64()
		// Parity counters trail the reply; an older daemon does not send
		// them.
		var rebuilt, fallbacks uint64
		if d.Remaining() > 0 {
			rebuilt = d.Uint64()
			fallbacks = d.Uint64()
		}
		if err := d.Finish(); err != nil {
			return err
		}
		fmt.Printf("fsck %s: %d files scanned (%d bytes), %d corrupt, %d missing, %d repairs queued\n",
			args[1], scanned, bytes, corrupt, missing, repairs)
		if rebuilt+fallbacks > 0 {
			fmt.Printf("parity: %d rebuilt in place, %d fell back to re-pull\n", rebuilt, fallbacks)
		}
		return nil

	case "stats":
		// stats <site-ctl-addr>: dump the site's instrumentation registry
		// (Prometheus text format) over the Request Manager.
		if len(args) != 2 {
			return fmt.Errorf("usage: stats <site-ctl-addr>")
		}
		d, err := call(args[1], core.MethodMetrics, nil)
		if err != nil {
			return err
		}
		text := d.String()
		if err := d.Finish(); err != nil {
			return err
		}
		fmt.Print(text)
		return nil

	case "locations":
		if rcAddr == "" || len(args) != 2 {
			return fmt.Errorf("usage: -rc <addr> locations <lfn>")
		}
		rc, err := replica.DialContext(ctx, rcAddr, cred, roots)
		if err != nil {
			return err
		}
		defer rc.Close()
		locs, err := rc.Locations(ctx, args[1])
		if err != nil {
			return err
		}
		for _, l := range locs {
			fmt.Println(l)
		}
		return nil

	case "which":
		// which <lfn>: ask the RLI which sites' Local Replica Catalogs
		// might hold the file. Bloom-digest based, so false positives are
		// possible; confirm with an LRC point query (gdmp catalog or a
		// pull) before trusting a hit.
		if rcAddr == "" || len(args) != 2 {
			return fmt.Errorf("usage: -rc <addr> which <lfn>")
		}
		rc, err := replica.DialContext(ctx, rcAddr, cred, roots)
		if err != nil {
			return err
		}
		defer rc.Close()
		sites, err := rc.Which(ctx, args[1])
		if err != nil {
			return err
		}
		if len(sites) == 0 {
			fmt.Printf("no site digest matches %s\n", args[1])
			return nil
		}
		for _, s := range sites {
			fmt.Printf("%s  ctl=%s gen=%d\n", s.Name, s.Addr, s.Gen)
		}
		return nil

	case "rli":
		// rli: list the live entries of the Replica Location Index — each
		// site's last pushed digest generation, LFN count, and remaining
		// soft-state lifetime.
		if rcAddr == "" || len(args) != 1 {
			return fmt.Errorf("usage: -rc <addr> rli")
		}
		rc, err := replica.DialContext(ctx, rcAddr, cred, roots)
		if err != nil {
			return err
		}
		defer rc.Close()
		sites, err := rc.RLISites(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("%d live site digests:\n", len(sites))
		for _, s := range sites {
			fmt.Printf("  %s  ctl=%s gen=%d lfns=%d expires-in=%v\n",
				s.Name, s.Addr, s.Gen, s.Count, s.ExpiresIn.Round(time.Second))
		}
		return nil

	case "query":
		if rcAddr == "" || len(args) != 2 {
			return fmt.Errorf("usage: -rc <addr> query <filter>")
		}
		rc, err := replica.DialContext(ctx, rcAddr, cred, roots)
		if err != nil {
			return err
		}
		defer rc.Close()
		files, err := rc.Query(ctx, args[1])
		if err != nil {
			return err
		}
		for _, f := range files {
			var attrs []string
			for k, v := range f.Attrs {
				attrs = append(attrs, k+"="+v)
			}
			fmt.Printf("%s  %s\n", f.Name, strings.Join(attrs, " "))
		}
		return nil

	case "register":
		// register <lfn> <pfn>: record an existing physical file in the
		// replica catalog (operator-driven publication).
		if rcAddr == "" || len(args) != 3 {
			return fmt.Errorf("usage: -rc <addr> register <lfn> <pfn>")
		}
		if _, err := core.ParsePFN(args[2]); err != nil {
			return err
		}
		rc, err := replica.DialContext(ctx, rcAddr, cred, roots)
		if err != nil {
			return err
		}
		defer rc.Close()
		if err := rc.Register(ctx, args[1], map[string]string{
			replica.AttrOwner: cred.Identity().String(),
		}); err != nil {
			return err
		}
		if err := rc.AddReplica(ctx, args[1], args[2]); err != nil {
			return err
		}
		fmt.Printf("registered %s -> %s\n", args[1], args[2])
		return nil

	case "fetch-lfn":
		// fetch-lfn <lfn> <local-path>: resolve the logical name through
		// the catalog, pick a replica, and run the Data Mover retrieval.
		if rcAddr == "" || len(args) != 3 {
			return fmt.Errorf("usage: -rc <addr> fetch-lfn <lfn> <local-path>")
		}
		rc, err := replica.DialContext(ctx, rcAddr, cred, roots)
		if err != nil {
			return err
		}
		locs, err := rc.Locations(ctx, args[1])
		rc.Close()
		if err != nil {
			return err
		}
		var pfn core.PFN
		found := false
		for _, l := range locs {
			if p, err := core.ParsePFN(l); err == nil {
				pfn, found = p, true
				break
			}
		}
		if !found {
			return fmt.Errorf("no usable replica of %s (locations: %v)", args[1], locs)
		}
		connect := func(ctx context.Context) (*gridftp.Client, error) {
			return gridftp.DialContext(ctx, pfn.Addr, cred, roots, gridftp.WithParallelism(parallel))
		}
		stats, err := gridftp.ReliableGetFile(ctx, connect, pfn.Path, args[2], pol)
		if err != nil {
			return err
		}
		fmt.Printf("fetched %s from %s: %d bytes (%.2f Mbps)\n",
			args[1], pfn.Addr, stats.Bytes, stats.RateMbps())
		return nil

	case "pull":
		// pull <dest-dir> <lfn>...: resolve each logical file through the
		// catalog and fetch the batch through the replication scheduler,
		// -pull-workers at a time, at most -per-source per source host.
		if rcAddr == "" || len(args) < 3 {
			return fmt.Errorf("usage: -rc <addr> pull <dest-dir> <lfn>...")
		}
		destDir := args[1]
		if err := os.MkdirAll(destDir, 0o755); err != nil {
			return err
		}
		rc, err := replica.DialContext(ctx, rcAddr, cred, roots)
		if err != nil {
			return err
		}
		defer rc.Close()
		sched := xfer.New(xfer.Config{Workers: pullWorkers, PerSource: perSource})
		defer sched.Close()
		type pull struct {
			lfn string
			tk  *xfer.Ticket
		}
		pulls := make([]pull, 0, len(args)-2)
		for _, lfn := range args[2:] {
			lfn := lfn
			pulls = append(pulls, pull{lfn, sched.Submit(lfn, 0, func(jobCtx context.Context) error {
				locs, err := rc.Locations(jobCtx, lfn)
				if err != nil {
					return err
				}
				var pfn core.PFN
				found := false
				for _, l := range locs {
					if p, err := core.ParsePFN(l); err == nil {
						pfn, found = p, true
						break
					}
				}
				if !found {
					return fmt.Errorf("no usable replica (locations: %v)", locs)
				}
				release, err := sched.AcquireSource(jobCtx, pfn.Addr)
				if err != nil {
					return err
				}
				defer release()
				connect := func(ctx context.Context) (*gridftp.Client, error) {
					return gridftp.DialContext(ctx, pfn.Addr, cred, roots, gridftp.WithParallelism(parallel))
				}
				dst := filepath.Join(destDir, filepath.FromSlash(path.Clean("/"+pfn.Path)))
				if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
					return err
				}
				_, err = gridftp.ReliableGetFile(jobCtx, connect, pfn.Path, dst, pol)
				return err
			})})
		}
		var errs []error
		for _, p := range pulls {
			if err := p.tk.Wait(ctx); err != nil {
				errs = append(errs, fmt.Errorf("%s: %w", p.lfn, err))
				continue
			}
			fmt.Printf("pulled %s\n", p.lfn)
		}
		return errors.Join(errs...)

	case "fetch":
		if len(args) != 3 {
			return fmt.Errorf("usage: fetch <pfn> <local-path>")
		}
		pfn, err := core.ParsePFN(args[1])
		if err != nil {
			return err
		}
		connect := func(ctx context.Context) (*gridftp.Client, error) {
			return gridftp.DialContext(ctx, pfn.Addr, cred, roots, gridftp.WithParallelism(parallel))
		}
		stats, err := gridftp.ReliableGetFile(ctx, connect, pfn.Path, args[2], pol)
		if err != nil {
			return err
		}
		fmt.Printf("fetched %d bytes in %v (%.2f Mbps, %d streams, %d attempts)\n",
			stats.Bytes, stats.Elapsed.Round(time.Millisecond),
			stats.RateMbps(), stats.Streams, stats.Attempts)
		return nil

	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}
