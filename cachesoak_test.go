// Cache-soak harness: Zipf-skewed read traffic against MSS-backed consumer
// sites, proving the disk pool behaves as the paper's "data transfer cache
// for the Grid" (Section 4.4) under sustained load. Contract under test:
//
//   - a sustained hit-rate floor at both Zipf skews (more skew → more
//     hits, the reason a cache in front of WAN pulls pays off at all);
//   - pool occupancy never exceeds the configured capacity, not even
//     transiently between an access and its eviction;
//   - every eviction of a cache-only replica withdraws the matching
//     replica-catalog location — the catalog never advertises bytes the
//     pool threw away;
//   - the gdmp_pool_* metric family accounts for every access exactly,
//     including the p50/p99 stage-latency histogram.
//
// Every test logs its seed; set CACHE_SEED to replay a run. With
// BENCH_CACHE_OUT set, the soak writes BENCH_cache.json comparing hit rate
// and stage latency across LRU vs FIFO at two skews.
package gdmp_test

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"gdmp/internal/core"
	"gdmp/internal/mss"
	"gdmp/internal/obs"
	"gdmp/internal/testbed"
	"gdmp/internal/workload"
)

// cacheSeed returns the run's randomization seed (overridable with
// CACHE_SEED) and logs it so a failure replays exactly.
func cacheSeed(t *testing.T) int64 {
	t.Helper()
	seed := int64(20260805)
	if s := os.Getenv("CACHE_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("CACHE_SEED %q: %v", s, err)
		}
		seed = v
	}
	t.Logf("cache seed: %d (set CACHE_SEED to replay)", seed)
	return seed
}

// Soak topology: one producer holding all 64 files, two consumer sites
// whose pools hold 24 files' worth of bytes each. 400 accesses split
// across the consumers re-request the catalog under Zipf popularity.
const (
	soakFiles     = 64
	soakFileBytes = 4096
	soakRequests  = 400
	soakPoolFiles = 24
)

// cacheRunResult is one (policy, skew) soak outcome, and one entry of the
// BENCH_cache.json runs array.
type cacheRunResult struct {
	Policy     string  `json:"policy"`
	ZipfS      float64 `json:"zipf_s"`
	Requests   int     `json:"requests"`
	Hits       int     `json:"hits"`
	Misses     int     `json:"misses"`
	Evictions  int     `json:"evictions"`
	HitRate    float64 `json:"hit_rate"`
	StageP50Ms float64 `json:"stage_p50_ms"`
	StageP99Ms float64 `json:"stage_p99_ms"`
}

// runCacheSoak drives one full Zipf trace against a fresh grid and checks
// every invariant that must hold regardless of policy or skew.
func runCacheSoak(t *testing.T, seed int64, policy mss.EvictionPolicy, polName string, zipfS float64) cacheRunResult {
	t.Helper()
	g, err := testbed.NewGrid(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	prod, err := g.AddSite("cern.ch", testbed.SiteOptions{})
	if err != nil {
		t.Fatal(err)
	}

	tr, err := workload.GenerateTrace(workload.TraceConfig{
		Files:       soakFiles,
		FileBytes:   soakFileBytes,
		S:           zipfS,
		Requests:    soakRequests,
		Sites:       []string{"anl.gov", "fnal.gov"},
		Collections: 4,
		Seed:        seed,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Both consumers share one registry: the gdmp_pool_* family then
	// carries the run's aggregate, which is what the bench reports.
	reg := obs.NewRegistry()
	consumers := make(map[string]*core.Site, 2)
	for _, name := range tr.Cfg.Sites {
		c, err := g.AddSite(name, testbed.SiteOptions{
			WithMSS:     true,
			MSSCapacity: soakPoolFiles * soakFileBytes,
			MSSPolicy:   policy,
			Metrics:     reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		consumers[name] = c
	}

	// The producer's catalog: many small LFNs grouped in popularity-block
	// collections.
	lfns := make([]string, soakFiles)
	for i := 0; i < soakFiles; i++ {
		rel := tr.FileName(i)
		if _, err := g.WriteSiteFile(prod.Name(), rel, testbed.MakeData(soakFileBytes, seed+int64(i))); err != nil {
			t.Fatal(err)
		}
		pf, err := prod.Publish(rel, core.PublishOptions{Collection: tr.Collection(i)})
		if err != nil {
			t.Fatal(err)
		}
		lfns[i] = pf.LFN
	}

	// Drive the trace. Capacity is checked after every single access: an
	// overshoot that a later eviction would mask still fails the run.
	for i, a := range tr.Accesses {
		c := consumers[a.Site]
		if err := c.Get(lfns[a.File]); err != nil {
			t.Fatalf("access %d: get %s at %s: %v", i, lfns[a.File], a.Site, err)
		}
		if used, capacity := c.Pool().Used(), c.Pool().Capacity(); used > capacity {
			t.Fatalf("access %d: pool occupancy %d exceeds capacity %d at %s", i, used, capacity, a.Site)
		}
	}

	var hits, misses, evictions int
	for name, c := range consumers {
		st := c.Pool().Stats()
		hits += st.Hits
		misses += st.Misses
		evictions += st.Evictions

		// Eviction accounting closes exactly: every miss added one file
		// to the pool, so what is not resident now was evicted.
		if want := st.Misses - len(c.Pool().PoolContents()); st.Evictions != want {
			t.Errorf("%s: %d evictions, want %d (= %d misses - %d residents)",
				name, st.Evictions, want, st.Misses, len(c.Pool().PoolContents()))
		}

		// Eviction ↔ RC-withdrawal consistency: the replica catalog lists
		// this consumer for exactly the files it still holds.
		for i, lfn := range lfns {
			locs, err := g.Catalog.Locations(lfn)
			if err != nil {
				t.Fatalf("locations of %s: %v", lfn, err)
			}
			inRC := false
			for _, loc := range locs {
				if strings.Contains(loc, c.DataAddr()) {
					inRC = true
					break
				}
			}
			if has := c.HasFile(lfn); has != inRC {
				t.Errorf("%s: file %d (%s): resident=%v but RC location present=%v",
					name, i, lfn, has, inRC)
			}
		}
	}
	if hits+misses != soakRequests {
		t.Errorf("hits %d + misses %d != %d accesses", hits, misses, soakRequests)
	}

	// The metric family agrees with the MSS counters, including the
	// stage-latency histogram: one observation per miss (each miss is one
	// WAN pull whose fetch latency was recorded).
	text := reg.Text()
	for series, want := range map[string]float64{
		"gdmp_pool_hits_total":          float64(hits),
		"gdmp_pool_misses_total":        float64(misses),
		"gdmp_pool_evictions_total":     float64(evictions),
		"gdmp_pool_stage_seconds_count": float64(misses),
		"gdmp_pool_capacity_bytes":      float64(soakPoolFiles * soakFileBytes),
	} {
		if got := metricValue(text, series); got != want {
			t.Errorf("%s = %v, want %v", series, got, want)
		}
	}

	// The shared histogram yields the run's latency quantiles.
	pm := obs.NewPoolMetrics(reg)
	res := cacheRunResult{
		Policy:     polName,
		ZipfS:      zipfS,
		Requests:   soakRequests,
		Hits:       hits,
		Misses:     misses,
		Evictions:  evictions,
		HitRate:    float64(hits) / float64(soakRequests),
		StageP50Ms: pm.StageSeconds.Quantile(0.50) * 1000,
		StageP99Ms: pm.StageSeconds.Quantile(0.99) * 1000,
	}
	t.Logf("%s s=%.1f: %.1f%% hit rate (%d hits, %d misses, %d evictions), stage p50 %.2fms p99 %.2fms",
		polName, zipfS, 100*res.HitRate, hits, misses, evictions, res.StageP50Ms, res.StageP99Ms)
	return res
}

// TestCacheSoakZipf is the acceptance scenario: the full LRU/FIFO × skew
// matrix, with hit-rate floors per combination and the skew ordering that
// makes a popularity cache worth running.
func TestCacheSoakZipf(t *testing.T) {
	seed := cacheSeed(t)
	combos := []struct {
		policy  mss.EvictionPolicy
		polName string
		zipfS   float64
		floor   float64
	}{
		{mss.LRU, "lru", 1.2, 0.55},
		{mss.LRU, "lru", 0.8, 0.35},
		{mss.FIFO, "fifo", 1.2, 0.45},
		{mss.FIFO, "fifo", 0.8, 0.30},
	}
	runs := make([]cacheRunResult, 0, len(combos))
	hitBySkew := make(map[string]map[float64]float64)
	for _, c := range combos {
		res := runCacheSoak(t, seed, c.policy, c.polName, c.zipfS)
		if res.HitRate < c.floor {
			t.Errorf("%s s=%.1f: hit rate %.3f below the %.2f floor", c.polName, c.zipfS, res.HitRate, c.floor)
		}
		if hitBySkew[c.polName] == nil {
			hitBySkew[c.polName] = make(map[float64]float64)
		}
		hitBySkew[c.polName][c.zipfS] = res.HitRate
		runs = append(runs, res)
	}
	// More skew must mean more hits under either policy — the workload
	// property the cache exists to exploit.
	for pol, by := range hitBySkew {
		if by[1.2] <= by[0.8] {
			t.Errorf("%s: hit rate %.3f at s=1.2 not above %.3f at s=0.8", pol, by[1.2], by[0.8])
		}
	}

	if out := os.Getenv("BENCH_CACHE_OUT"); out != "" {
		doc := struct {
			Benchmark string           `json:"benchmark"`
			Seed      int64            `json:"seed"`
			Files     int              `json:"files"`
			FileBytes int              `json:"file_bytes"`
			PoolFiles int              `json:"pool_capacity_files"`
			Runs      []cacheRunResult `json:"runs"`
		}{
			Benchmark: "disk-pool cache under Zipf traffic",
			Seed:      seed,
			Files:     soakFiles,
			FileBytes: soakFileBytes,
			PoolFiles: soakPoolFiles,
			Runs:      runs,
		}
		buf, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", out)
	}
}

// TestCachePrefetchHotCollection proves the demand-triggered prefetcher:
// after the configured number of misses land in one collection, the
// consumer brings in the remaining members without being asked.
func TestCachePrefetchHotCollection(t *testing.T) {
	cacheSeed(t)
	g, err := testbed.NewGrid(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	prod, err := g.AddSite("cern.ch", testbed.SiteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	cons, err := g.AddSite("anl.gov", testbed.SiteOptions{
		WithMSS:     true,
		MSSCapacity: 1 << 20,
		Prefetch:    3,
		Metrics:     reg,
	})
	if err != nil {
		t.Fatal(err)
	}

	const members = 6
	lfns := make([]string, members)
	for i := 0; i < members; i++ {
		rel := fmt.Sprintf("hot/f%d.dat", i)
		if _, err := g.WriteSiteFile(prod.Name(), rel, testbed.MakeData(2048, int64(i))); err != nil {
			t.Fatal(err)
		}
		pf, err := prod.Publish(rel, core.PublishOptions{Collection: "hot"})
		if err != nil {
			t.Fatal(err)
		}
		lfns[i] = pf.LFN
	}

	// Three demand misses on the collection cross the threshold.
	for i := 0; i < 3; i++ {
		if err := cons.Get(lfns[i]); err != nil {
			t.Fatal(err)
		}
	}
	// The prefetcher pulls the rest on its own.
	waitUntil(t, 15*time.Second, "prefetch of the remaining collection members", func() bool {
		for _, lfn := range lfns[3:] {
			if !cons.HasFile(lfn) {
				return false
			}
		}
		return true
	})
	if got := metricValue(reg.Text(), "gdmp_pool_prefetches_total"); got < float64(members-3) {
		t.Errorf("gdmp_pool_prefetches_total = %v, want >= %d", got, members-3)
	}
}
