// Overload chaos harness: a seeded ~10x offered load plus a synchronized
// retry storm slams a site's admission controller, and the overload
// protections must hold exactly — goodput stays above a floor, p99
// admission wait stays bounded by the queue, not one request executes
// after its propagated deadline, the typed retry-after floors client
// backoff, brownout sheds background work and lifts when the storm ends,
// draining refuses queued work while in-flight work finishes, and an
// injected ENOSPC on the staging path releases every reservation without
// orphaning a .part or quarantining a healthy replica. Mixed-version
// wire interop is proven in both directions.
//
// The run logs its seed; set OVERLOAD_SEED to replay one.
package gdmp_test

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"math"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"gdmp/internal/admission"
	"gdmp/internal/core"
	"gdmp/internal/faults"
	"gdmp/internal/gridftp"
	"gdmp/internal/gsi"
	"gdmp/internal/obs"
	"gdmp/internal/retry"
	"gdmp/internal/rpc"
	"gdmp/internal/testbed"
)

// overloadSeed returns the run's seed (overridable with OVERLOAD_SEED)
// and logs it so a failure replays exactly. The seed drives retry jitter
// and the fault injector.
func overloadSeed(t *testing.T) int64 {
	t.Helper()
	seed := int64(20260809)
	if s := os.Getenv("OVERLOAD_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("OVERLOAD_SEED %q: %v", s, err)
		}
		seed = v
	}
	t.Logf("overload seed: %d (set OVERLOAD_SEED to replay)", seed)
	return seed
}

// overloadRig brings up a bare Request Manager server with its own CA so
// admission behavior can be asserted without a full site around it.
// Clients must be dialed from the test goroutine (dial calls t.Fatal).
func overloadRig(t *testing.T, methods []string, configure func(*rpc.Server)) (addr string, dial func(name string) *rpc.Client) {
	t.Helper()
	ca, err := gsi.NewCA("Overload Test CA", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	roots := []*gsi.Certificate{ca.Certificate()}
	serverCred, err := ca.Issue("gdmp/overload-server", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	acl := gsi.NewACL()
	for _, m := range methods {
		acl.AllowAll(gsi.Operation(m))
	}
	srv := rpc.NewServer(serverCred, roots, acl)
	configure(srv)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	dial = func(name string) *rpc.Client {
		t.Helper()
		cred, err := ca.Issue(name, time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		cl, err := rpc.Dial(ln.Addr().String(), cred, roots, rpc.WithTimeout(10*time.Second))
		if err != nil {
			t.Fatalf("dial %s: %v", name, err)
		}
		t.Cleanup(func() { cl.Close() })
		return cl
	}
	return ln.Addr().String(), dial
}

// histQuantile computes a conservative quantile from a histogram
// snapshot: the upper bound of the bucket holding the q-th observation.
func histQuantile(h *obs.Histogram, q float64) float64 {
	bounds, counts := h.Snapshot()
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	var cum int64
	for i, c := range counts {
		cum += c
		if cum >= rank {
			return bounds[i]
		}
	}
	return math.Inf(1)
}

// TestOverloadGoodputUnderRetryStorm is the acceptance scenario: 40
// closed-loop workers (10x the 4 control slots) all released on one
// barrier, each retrying under the shared policy — a synchronized retry
// storm. The admission controller must keep goodput above the floor,
// bound p99 admission wait by the queue, reject the overflow with typed
// retry-afters that floor the clients' backoff, and — by exact
// accounting — never execute a request past its propagated deadline.
func TestOverloadGoodputUnderRetryStorm(t *testing.T) {
	seed := overloadSeed(t)
	reg := obs.NewRegistry()
	ctrl := admission.New(admission.Config{
		ControlSlots:  4,
		ControlQueue:  16,
		RetryAfterMin: 10 * time.Millisecond,
		Registry:      reg,
	})
	var executed, lateExecs atomic.Int64
	_, dial := overloadRig(t, []string{"work"}, func(s *rpc.Server) {
		s.SetMetrics(reg)
		s.SetAdmission(ctrl, nil)
		s.Handle("work", func(ctx context.Context, _ *gsi.Peer, args *rpc.Decoder, resp *rpc.Encoder) error {
			// The post-deadline accounting: the wire-propagated budget
			// becomes the handler context's deadline, and a handler
			// entered after it is an admission bug.
			if d, ok := ctx.Deadline(); ok && !time.Now().Before(d) {
				lateExecs.Add(1)
			}
			executed.Add(1)
			time.Sleep(2 * time.Millisecond)
			return nil
		})
	})

	const workers, opsPer = 40, 5
	clients := make([]*rpc.Client, workers)
	for w := range clients {
		clients[w] = dial(fmt.Sprintf("worker-%d", w))
	}

	start := make(chan struct{})
	var succeeded atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl := clients[w]
			pol := retry.Policy{
				Attempts:  8,
				BaseDelay: time.Millisecond, // below RetryAfterMin, so floors must fire
				MaxDelay:  20 * time.Millisecond,
				Jitter:    0.5,
				Seed:      seed + int64(w),
				Op:        "overload.work",
				Registry:  reg,
			}
			<-start
			for op := 0; op < opsPer; op++ {
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				err := pol.Do(ctx, func(attempt int) error {
					_, err := cl.CallContext(rpc.WithAttempt(ctx, attempt), "work", nil)
					return err
				})
				cancel()
				if err == nil {
					succeeded.Add(1)
				}
			}
		}(w)
	}
	close(start)
	wg.Wait()

	const total = workers * opsPer
	const floor = total * 6 / 10
	if got := succeeded.Load(); got < floor {
		t.Errorf("goodput %d/%d, want >= %d", got, total, floor)
	}
	if got := lateExecs.Load(); got != 0 {
		t.Errorf("%d requests executed past their propagated deadline, want 0", got)
	}
	waitUntil(t, 5*time.Second, "admission settled", ctrl.Settled)
	cs := ctrl.ClassStats(admission.Control)
	if cs.Rejected+cs.Shed+cs.Expired == 0 {
		t.Error("a 10x storm produced zero admission rejections; the controller is not limiting")
	}
	if cs.Admitted != uint64(executed.Load()) {
		t.Errorf("admitted %d != executed %d; a granted slot must mean exactly one execution", cs.Admitted, executed.Load())
	}
	floors := reg.CounterVec("gdmp_retry_retry_after_floors_total", "", "op").
		WithLabelValues("overload.work").Value()
	if floors == 0 {
		t.Error("no client backoff was floored by the server retry-after")
	}
	wait := reg.HistogramVec("gdmp_admission_wait_seconds", "", nil, "class").
		WithLabelValues("control")
	if p99 := histQuantile(wait, 0.99); p99 > 0.25 {
		t.Errorf("p99 admission wait %.3fs, want <= 0.25s (bounded by the queue)", p99)
	}
	t.Logf("storm: %d/%d succeeded, %d executed, %d rejected/shed/expired, %d backoff floors, p99 wait <= %.3gs",
		succeeded.Load(), total, executed.Load(), cs.Rejected+cs.Shed+cs.Expired, floors, histQuantile(wait, 0.99))
}

// TestOverloadBrownoutShedsBackgroundAndRecovers storms a site's GridFTP
// data plane (one bulk slot, real multi-millisecond transfers) until its
// brownout trips, then proves background scrub passes stop (deferred,
// counted) while the storm lasts and resume after it ends and the load
// signal decays below the exit threshold.
func TestOverloadBrownoutShedsBackgroundAndRecovers(t *testing.T) {
	g, err := testbed.NewGrid(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	reg := obs.NewRegistry()
	site, err := g.AddSite("cern.ch", testbed.SiteOptions{
		Metrics:       reg,
		ScrubInterval: 25 * time.Millisecond,
		Admission: admission.Config{
			BulkSlots:     1,
			BulkQueue:     4,
			BrownoutEnter: 0.6,
			BrownoutExit:  0.2,
			DecayHalfLife: 250 * time.Millisecond, // so the test sees the exit promptly
			RetryAfterMin: 2 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	const rel = "overload/hot.db"
	publishData(t, g, site, rel, testbed.MakeData(4<<20, 7))
	scrubPasses := func() int64 { return reg.Counter("gdmp_scrub_passes_total", "").Value() }
	waitUntil(t, 5*time.Second, "scrub daemon running", func() bool { return scrubPasses() > 0 })

	// The storm: 12 closed-loop GridFTP readers against one bulk slot.
	// Each 4 MiB transfer holds the slot for real milliseconds, so the
	// wait queue stays full and admission waits dominate the load signal.
	const stormers = 12
	scratch := t.TempDir()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < stormers; i++ {
		cred, err := g.CA.Issue(fmt.Sprintf("stormer-%d", i), time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, cred *gsi.Credential) {
			defer wg.Done()
			dst := filepath.Join(scratch, fmt.Sprintf("pull-%d", i))
			for {
				select {
				case <-stop:
					return
				default:
				}
				cl, err := gridftp.Dial(site.DataAddr(), cred, g.Roots)
				if err != nil {
					continue
				}
				_, _ = cl.GetFile(rel, dst) // busy rejections are the point
				cl.Close()
			}
		}(i, cred)
	}

	waitUntil(t, 10*time.Second, "brownout entry", func() bool { return site.Status().BrownoutActive })
	passesDuring := scrubPasses()
	deferredBefore := site.Status().BrownoutDeferred
	time.Sleep(300 * time.Millisecond) // several scrub intervals under brownout
	if got := scrubPasses(); got != passesDuring {
		t.Errorf("scrub passes advanced %d -> %d during brownout, want deferred", passesDuring, got)
	}
	st := site.Status()
	if !st.BrownoutActive {
		t.Error("brownout lifted while the storm was still running")
	}
	if st.BrownoutDeferred <= deferredBefore {
		t.Errorf("brownout deferred count did not advance (%d -> %d)", deferredBefore, st.BrownoutDeferred)
	}
	if st.AdmissionRejected == 0 {
		t.Error("storm produced zero admission rejections")
	}

	close(stop)
	wg.Wait()
	waitUntil(t, 10*time.Second, "brownout exit", func() bool { return !site.Status().BrownoutActive })
	passesAfter := scrubPasses()
	waitUntil(t, 5*time.Second, "scrub passes resume", func() bool { return scrubPasses() > passesAfter })
	if st := site.Status(); st.BrownoutEntered < 1 {
		t.Errorf("BrownoutEntered = %d, want >= 1", st.BrownoutEntered)
	}
}

// TestOverloadMixedVersionWire proves both rolling-upgrade directions of
// the generation-1 wire extension end to end: a legacy (generation-0)
// client against a current site, and a current client against an
// emulated pre-metadata server that decodes request frames strictly.
func TestOverloadMixedVersionWire(t *testing.T) {
	// Old client, new server: the pinned-legacy client frames carry no
	// metadata envelope and the site must answer normally.
	g, err := testbed.NewGrid(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	site, err := g.AddSite("cern.ch", testbed.SiteOptions{Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	cred, err := g.CA.Issue("legacy-client", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	oldCl, err := rpc.Dial(site.Addr(), cred, g.Roots,
		rpc.WithTimeout(5*time.Second), rpc.WithLegacyWire())
	if err != nil {
		t.Fatal(err)
	}
	defer oldCl.Close()
	for i := 0; i < 3; i++ {
		d, err := oldCl.Call(core.MethodPing, nil)
		if err != nil {
			t.Fatalf("legacy client ping %d: %v", i, err)
		}
		if got := d.String(); got != "cern.ch" {
			t.Fatalf("legacy client ping %d reply = %q, want cern.ch", i, got)
		}
	}

	// New client, old server: a generation-0 server that rejects any
	// trailing request bytes and has no rpc.caps handler. The client's
	// probe must downgrade gracefully and the connection stay usable.
	ca, err := gsi.NewCA("Legacy Grid CA", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	roots := []*gsi.Certificate{ca.Certificate()}
	srvCred, err := ca.Issue("gdmp/legacy-server", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				if _, err := gsi.Handshake(conn, srvCred, roots, false); err != nil {
					return
				}
				for {
					frame, err := rpc.ReadFrame(conn)
					if err != nil {
						return
					}
					d := rpc.NewDecoder(frame)
					method := d.String()
					payload := d.Bytes32()
					if err := d.Finish(); err != nil {
						return // generation-0 decode is strict
					}
					var out rpc.Encoder
					switch method {
					case "echo":
						pd := rpc.NewDecoder(payload)
						out.Uint8(0) // status OK
						out.String(pd.String())
					default:
						out.Uint8(1) // status error
						out.String(fmt.Sprintf("unknown method %q", method))
					}
					if err := rpc.WriteFrame(conn, out.Bytes()); err != nil {
						return
					}
				}
			}()
		}
	}()
	newCred, err := ca.Issue("modern-client", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	newCl, err := rpc.Dial(ln.Addr().String(), newCred, roots, rpc.WithTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer newCl.Close()
	for i := 0; i < 3; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		var args rpc.Encoder
		args.String(fmt.Sprintf("ping-%d", i))
		d, err := newCl.CallContext(rpc.WithAttempt(ctx, i), "echo", &args)
		cancel()
		if err != nil {
			t.Fatalf("modern client call %d against legacy server: %v", i, err)
		}
		if got := d.String(); got != fmt.Sprintf("ping-%d", i) {
			t.Fatalf("call %d reply = %q", i, got)
		}
	}
}

// TestOverloadNoSpaceReleasesReservation injects ENOSPC into a
// consumer's staging writes and proves the failure is contained: the
// pull fails with the real errno, the pool reservation is released, no
// .part orphan survives, nothing is quarantined, the injected fault is
// accounted exactly, and the producer's healthy replica stays pullable.
func TestOverloadNoSpaceReleasesReservation(t *testing.T) {
	seed := overloadSeed(t)
	g, err := testbed.NewGrid(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	producer, err := g.AddSite("cern.ch", testbed.SiteOptions{Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	consReg := obs.NewRegistry()
	in := faults.New(seed, func(faults.ConnInfo) faults.Plan { return faults.Plan{} },
		faults.WithMetrics(consReg))
	cons, err := g.AddSite("anl.gov", testbed.SiteOptions{
		Metrics:          consReg,
		Durable:          true,
		WithMSS:          true,
		MSSCapacity:      256 << 10,
		Retry:            fastRetry(2),
		TransferAttempts: 2,
		StageWriter:      in.NoSpaceWriter(16 << 10), // disk "fills" 16 KiB into a 64 KiB file
	})
	if err != nil {
		t.Fatal(err)
	}

	payload := testbed.MakeData(64<<10, seed)
	pf := publishData(t, g, producer, "overload/full.db", payload)

	err = cons.Get(pf.LFN)
	if err == nil {
		t.Fatal("Get succeeded despite ENOSPC injection on every staging write")
	}
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("Get error = %v, want errors.Is(..., syscall.ENOSPC)", err)
	}
	if got := in.Injected(faults.KindNoSpace); got < 1 {
		t.Errorf("injected ENOSPC count = %d, want >= 1", got)
	}

	// Containment: reservation released, no .part orphan, no quarantine.
	if got := consReg.Gauge("gdmp_pool_reserved_bytes", "").Value(); got != 0 {
		t.Errorf("pool reservation leaked: %d bytes still reserved", got)
	}
	st := cons.Status()
	if st.PoolUsed != 0 {
		t.Errorf("pool used = %d bytes after a failed pull, want 0", st.PoolUsed)
	}
	if st.QuarantinedFiles != 0 {
		t.Errorf("quarantined %d files after an ENOSPC pull failure, want 0", st.QuarantinedFiles)
	}
	var orphans []string
	err = filepath.WalkDir(cons.DataDir(), func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(path, ".part") {
			orphans = append(orphans, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(orphans) != 0 {
		t.Errorf(".part orphans after ENOSPC: %v (a full disk must not keep partials)", orphans)
	}

	// The producer's replica must be untouched: a healthy consumer pulls it.
	cons2, err := g.AddSite("fnal.gov", testbed.SiteOptions{Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	if err := cons2.Get(pf.LFN); err != nil {
		t.Fatalf("healthy consumer pull after the ENOSPC episode: %v", err)
	}
}

// TestOverloadDrainRejectsQueuedKeepsInFlight fills the admission queue,
// drains the controller, and proves the drain contract over the wire:
// queued and new work is refused with the typed draining rejection,
// the in-flight request finishes normally, and the class accounting
// settles exactly.
func TestOverloadDrainRejectsQueuedKeepsInFlight(t *testing.T) {
	reg := obs.NewRegistry()
	ctrl := admission.New(admission.Config{
		ControlSlots:  1,
		ControlQueue:  4,
		RetryAfterMin: 2 * time.Millisecond,
		Registry:      reg,
	})
	release := make(chan struct{})
	entered := make(chan struct{}, 8)
	_, dial := overloadRig(t, []string{"hold"}, func(s *rpc.Server) {
		s.SetMetrics(reg)
		s.SetAdmission(ctrl, nil)
		s.Handle("hold", func(ctx context.Context, _ *gsi.Peer, args *rpc.Decoder, resp *rpc.Encoder) error {
			entered <- struct{}{}
			<-release
			resp.String("done")
			return nil
		})
	})

	holder := dial("holder")
	waiter0, waiter1 := dial("waiter-0"), dial("waiter-1")
	late := dial("latecomer")

	inflight := make(chan error, 1)
	go func() {
		d, err := holder.Call("hold", nil)
		if err == nil && d.String() != "done" {
			err = fmt.Errorf("unexpected reply")
		}
		inflight <- err
	}()
	<-entered

	queued := make(chan error, 2)
	go func() { _, err := waiter0.Call("hold", nil); queued <- err }()
	go func() { _, err := waiter1.Call("hold", nil); queued <- err }()
	waitUntil(t, 3*time.Second, "two queued waiters", func() bool {
		return ctrl.Queued(admission.Control) == 2
	})

	ctrl.Drain()
	for i := 0; i < 2; i++ {
		err := <-queued
		if !errors.Is(err, admission.ErrDraining) {
			t.Fatalf("queued waiter %d error = %v, want ErrDraining", i, err)
		}
		if !errors.Is(err, admission.ErrOverloaded) {
			t.Fatalf("queued waiter %d error = %v, want ErrOverloaded too", i, err)
		}
	}
	if _, err := late.Call("hold", nil); !errors.Is(err, admission.ErrDraining) {
		t.Fatalf("post-drain call error = %v, want ErrDraining", err)
	}

	close(release)
	if err := <-inflight; err != nil {
		t.Fatalf("in-flight request must finish across a drain, got %v", err)
	}
	waitUntil(t, 3*time.Second, "admission settled", ctrl.Settled)
	cs := ctrl.ClassStats(admission.Control)
	if cs.Requested != 4 || cs.Admitted != 1 || cs.Drained != 3 {
		t.Errorf("drain accounting requested=%d admitted=%d drained=%d, want 4/1/3", cs.Requested, cs.Admitted, cs.Drained)
	}
}
