// Package gdmp is a from-scratch reproduction of "File and Object
// Replication in Data Grids" (Stockinger, Samar, Allcock, Foster, Holtman,
// Tierney; HPDC 2001): the GDMP replication system, its Globus substrates
// (security, RPC, replica catalog, GridFTP), the Objectivity-style object
// persistency layer, the Mass Storage System environment, and the object
// replication service, plus the models that regenerate the paper's
// evaluation (Figures 5 and 6 and the Section 5 and 6 analyses).
//
// The root package holds only documentation and the benchmark harness; the
// implementation lives under internal/ (see DESIGN.md for the inventory)
// and the runnable entry points under cmd/ and examples/.
package gdmp
