// Pool-eviction crash consistency: a site killed between a pool eviction
// and its replica-catalog withdrawal leaves a dangling RC location (the
// journal already recorded the removal, the catalog call never landed).
// Recovery plus one scrub/anti-entropy round must converge: the dangling
// location is withdrawn, no orphaned bytes survive on disk, and the site
// keeps serving what it still holds.
package gdmp_test

import (
	"context"
	"errors"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"gdmp/internal/testbed"
)

// rcBreaker is a DialFunc that can sever the replica catalog on command:
// block() refuses new dials to the catalog address AND closes the live
// connections it has seen, so even a site holding a persistent catalog
// connection (dialed once at startup) loses it mid-operation.
type rcBreaker struct {
	rcAddr string

	mu      sync.Mutex
	blocked bool
	conns   []net.Conn
}

func (b *rcBreaker) dial(network, addr string) (net.Conn, error) {
	b.mu.Lock()
	if addr == b.rcAddr && b.blocked {
		b.mu.Unlock()
		return nil, errors.New("rc unreachable (test breaker)")
	}
	b.mu.Unlock()
	c, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	b.mu.Lock()
	if addr == b.rcAddr {
		b.conns = append(b.conns, c)
	}
	b.mu.Unlock()
	return c, nil
}

func (b *rcBreaker) block() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.blocked = true
	for _, c := range b.conns {
		c.Close()
	}
	b.conns = nil
}

func (b *rcBreaker) unblock() {
	b.mu.Lock()
	b.blocked = false
	b.mu.Unlock()
}

func TestCrashRestartPoolEvictionWithdrawal(t *testing.T) {
	seed := crashSeed(t)
	g, err := testbed.NewGrid(crashDir(t))
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	ctx := context.Background()

	prod, err := g.AddSite("cern.ch", testbed.SiteOptions{
		Retry:                  fastRetry(2),
		NotifyFailureThreshold: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}

	// The consumer's pool holds one pulled replica OR one staged tape
	// file, never both — staging forces the eviction.
	const fileSize = 6000
	breaker := &rcBreaker{rcAddr: g.CatalogAddr}
	cons, err := g.AddSite("anl.gov", testbed.SiteOptions{
		Durable:     true,
		WithMSS:     true,
		MSSCapacity: 10_000,
		DialFunc:    breaker.dial,
		Retry:       fastRetry(1),
	})
	if err != nil {
		t.Fatal(err)
	}

	data := testbed.MakeData(fileSize, seed)
	pf := publishData(t, g, prod, "pool/a.db", data)
	// Subscribed after the publish: no pending notification competes with
	// the explicit Get, but the producer's anti-entropy round will still
	// visit this consumer as a peer.
	if err := cons.SubscribeTo(prod.Addr()); err != nil {
		t.Fatal(err)
	}

	if err := cons.Get(pf.LFN); err != nil {
		t.Fatal(err)
	}
	if !cons.Pool().OnDisk("pool/a.db") {
		t.Fatal("pulled replica did not land in the disk pool")
	}

	// A tape file whose stage must evict the pulled replica. Staging
	// needs no catalog call, so severing the catalog first pins the crash
	// window deterministically: the eviction's journal record lands, the
	// RC withdrawal cannot.
	if err := cons.Pool().PutTape("scratch/t1.dat", testbed.MakeData(fileSize, seed+1)); err != nil {
		t.Fatal(err)
	}
	breaker.block()
	if _, err := cons.Pool().Stage("scratch/t1.dat"); err != nil {
		t.Fatalf("stage with catalog dark: %v", err)
	}
	cons.Pool().Release("scratch/t1.dat")

	// The eviction went through locally...
	if cons.HasFile(pf.LFN) {
		t.Fatal("evicted replica still in the local catalog")
	}
	if _, err := os.Stat(filepath.Join(cons.DataDir(), "pool", "a.db")); !os.IsNotExist(err) {
		t.Fatalf("evicted bytes still on disk: %v", err)
	}
	// ...but the replica catalog still advertises the consumer: the
	// dangling location this test is about.
	if !locationAt(t, g, pf.LFN, cons.DataAddr()) {
		t.Fatal("test premise broken: RC withdrawal went through despite the severed catalog")
	}

	// SIGKILL in the crash window, then restart on the same directories.
	cons.Kill()
	breaker.unblock()
	cons, err = g.RestartSite("anl.gov")
	if err != nil {
		t.Fatal(err)
	}

	// Recovery agrees with the journal: the evicted replica stays gone —
	// not resurrected, not quarantined, no bytes on disk.
	if cons.HasFile(pf.LFN) {
		t.Fatal("recovery resurrected the evicted replica")
	}
	if _, err := os.Stat(filepath.Join(cons.DataDir(), "pool", "a.db")); !os.IsNotExist(err) {
		t.Fatalf("orphaned replica bytes survived recovery: %v", err)
	}

	// One self-healing round converges the grid: the consumer's scrub has
	// nothing to re-assert for the file, and the producer's anti-entropy
	// exchange sees a location pointing at a peer whose digest denies the
	// file — and withdraws it.
	if _, err := cons.ScrubPass(ctx); err != nil {
		t.Fatalf("consumer scrub: %v", err)
	}
	rep, err := prod.AntiEntropyPass(ctx)
	if err != nil {
		t.Fatalf("producer anti-entropy: %v", err)
	}
	if rep.Dangling < 1 {
		t.Fatalf("anti-entropy withdrew %d dangling locations, want >= 1 (%+v)", rep.Dangling, rep)
	}
	if locationAt(t, g, pf.LFN, cons.DataAddr()) {
		t.Fatal("dangling RC location survived the anti-entropy round")
	}
	if !locationAt(t, g, pf.LFN, prod.DataAddr()) {
		t.Fatal("anti-entropy withdrew the producer's own valid location")
	}

	// The reborn consumer still serves demand: a fresh Get re-pulls the
	// file (evicting the staged tape file in turn) and re-registers it.
	if err := cons.Get(pf.LFN); err != nil {
		t.Fatalf("re-pull after convergence: %v", err)
	}
	got, err := os.ReadFile(filepath.Join(cons.DataDir(), "pool", "a.db"))
	if err != nil || string(got) != string(data) {
		t.Fatalf("re-pulled content wrong: %v", err)
	}
	waitUntil(t, 5*time.Second, "re-registered RC location", func() bool {
		return locationAt(t, g, pf.LFN, cons.DataAddr())
	})
}

// locationAt reports whether the replica catalog lists a location of lfn
// at the given data address.
func locationAt(t *testing.T, g *testbed.Grid, lfn, dataAddr string) bool {
	t.Helper()
	locs, err := g.Catalog.Locations(lfn)
	if err != nil {
		t.Fatalf("locations of %s: %v", lfn, err)
	}
	for _, loc := range locs {
		if strings.Contains(loc, dataAddr) {
			return true
		}
	}
	return false
}
