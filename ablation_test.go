// Ablation benchmarks for the design choices DESIGN.md calls out: stream
// count under loss, disk-pool eviction policy under Zipf access, striped
// transfers, and the end-to-end analysis funnel.
package gdmp_test

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"gdmp/internal/mss"
	"gdmp/internal/netsim"
	"gdmp/internal/objectstore"
	"gdmp/internal/objrep"
	"gdmp/internal/workload"
)

// BenchmarkOptimalStreamCount reproduces the paper's operational finding:
// "We usually find that 4-8 streams is optimal." The sweet spot emerges
// from the model: more streams recover loss faster, too many provoke
// congestion losses on the shared bottleneck.
func BenchmarkOptimalStreamCount(b *testing.B) {
	for _, loss := range []float64{0, 5e-5, 5e-4} {
		b.Run(fmt.Sprintf("loss=%g", loss), func(b *testing.B) {
			cfg := netsim.CERNtoANL()
			cfg.LossRate = loss
			var bestStreams int
			var bestRate float64
			for i := 0; i < b.N; i++ {
				bestStreams, bestRate = 0, 0
				for s := 1; s <= 12; s++ {
					m, err := netsim.MeanThroughputMbps(cfg, netsim.Transfer{
						FileBytes: 100 * netsim.MB, Streams: s,
						BufferBytes: netsim.TunedBufferBytes,
					}, 6)
					if err != nil {
						b.Fatal(err)
					}
					if m > bestRate {
						bestRate, bestStreams = m, s
					}
				}
			}
			b.ReportMetric(float64(bestStreams), "optimal-streams")
			b.ReportMetric(bestRate, "Mbps-at-optimum")
		})
	}
}

// TestOptimalStreamsInPaperRange asserts the paper's 4-8 finding holds for
// the lossy tuned configuration.
func TestOptimalStreamsInPaperRange(t *testing.T) {
	cfg := netsim.CERNtoANL()
	cfg.LossRate = 5e-4 // a lossy day on the production link
	best, bestRate := 0, 0.0
	for s := 1; s <= 12; s++ {
		m, err := netsim.MeanThroughputMbps(cfg, netsim.Transfer{
			FileBytes: 100 * netsim.MB, Streams: s,
			BufferBytes: netsim.TunedBufferBytes,
		}, 10)
		if err != nil {
			t.Fatal(err)
		}
		if m > bestRate {
			bestRate, best = m, s
		}
	}
	if best < 3 || best > 10 {
		t.Fatalf("optimal stream count %d (%.1f Mbps) outside the paper's 4-8 neighborhood", best, bestRate)
	}
}

// BenchmarkStripedTransfer measures the Section 3.2 striping feature in the
// model: m x n host striping overcomes a per-host NIC limit.
func BenchmarkStripedTransfer(b *testing.B) {
	cfg := netsim.CERNtoANL()
	cfg.CrossTrafficMbps = 0 // full 45 Mbps available
	slowHost := netsim.HostProfile{NICMbps: 15}
	for _, hosts := range []int{1, 2, 3, 4} {
		b.Run(fmt.Sprintf("hosts=%dx%d", hosts, hosts), func(b *testing.B) {
			var rate float64
			for i := 0; i < b.N; i++ {
				r, err := netsim.SimulateStriped(cfg, netsim.StripedTransfer{
					FileBytes:   100 * netsim.MB,
					SourceHosts: hosts, DestHosts: hosts,
					StreamsPerPair: 2,
					BufferBytes:    netsim.TunedBufferBytes,
					Source:         slowHost, Dest: slowHost,
				})
				if err != nil {
					b.Fatal(err)
				}
				rate = r.ThroughputMbps
			}
			b.ReportMetric(rate, "Mbps")
		})
	}
}

// BenchmarkFanOut measures the producer-uplink contention when a published
// file fans out to several subscribers at once (the paper's
// producer-consumer model with multiple consumer sites).
func BenchmarkFanOut(b *testing.B) {
	cfg := netsim.CERNtoANL()
	for _, subs := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("subscribers=%d", subs), func(b *testing.B) {
			var worst time.Duration
			for i := 0; i < b.N; i++ {
				res, err := netsim.FanOut(cfg, 25*netsim.MB, 3, netsim.TunedBufferBytes, subs, 0)
				if err != nil {
					b.Fatal(err)
				}
				worst = 0
				for _, r := range res {
					if r.Duration > worst {
						worst = r.Duration
					}
				}
			}
			b.ReportMetric(worst.Seconds(), "s-slowest-subscriber")
		})
	}
}

// BenchmarkPoolEvictionPolicy compares LRU and FIFO disk-pool eviction
// under a Zipf-skewed access stream, the cache ablation of DESIGN.md.
// Replication is motivated by exactly this skew [Bres99].
func BenchmarkPoolEvictionPolicy(b *testing.B) {
	const (
		files    = 60
		fileSize = 64 * 1024
		capacity = files * fileSize / 4 // pool holds a quarter of the set
		accesses = 400
	)
	run := func(b *testing.B, policy mss.EvictionPolicy) {
		dir := b.TempDir()
		m, err := mss.New(mss.Config{
			TapeDir:      filepath.Join(dir, "tape"),
			PoolDir:      filepath.Join(dir, "pool"),
			PoolCapacity: capacity,
			Policy:       policy,
		})
		if err != nil {
			b.Fatal(err)
		}
		payload := make([]byte, fileSize)
		for i := 0; i < files; i++ {
			if err := m.PutTape(fmt.Sprintf("f%03d", i), payload); err != nil {
				b.Fatal(err)
			}
		}
		sequence := workload.SampleZipf(files, 1.1, accesses, 7)
		b.ResetTimer()
		var hitRate float64
		for i := 0; i < b.N; i++ {
			for _, idx := range sequence {
				name := fmt.Sprintf("f%03d", idx)
				if _, err := m.Stage(name); err != nil {
					b.Fatal(err)
				}
				m.Release(name)
			}
			st := m.Stats()
			hitRate = float64(st.Hits) / float64(st.Hits+st.Misses)
		}
		b.ReportMetric(hitRate*100, "%hit")
	}
	b.Run("LRU", func(b *testing.B) { run(b, mss.LRU) })
	b.Run("FIFO", func(b *testing.B) { run(b, mss.FIFO) })
}

// TestLRUBeatsFIFOUnderZipf asserts the ablation's direction: with skewed
// access, recency-based eviction keeps the hot files and wins.
func TestLRUBeatsFIFOUnderZipf(t *testing.T) {
	const (
		files    = 60
		fileSize = 8 * 1024
		capacity = files * fileSize / 4
		accesses = 600
	)
	hitRate := func(policy mss.EvictionPolicy) float64 {
		dir := t.TempDir()
		m, err := mss.New(mss.Config{
			TapeDir:      filepath.Join(dir, "tape"),
			PoolDir:      filepath.Join(dir, "pool"),
			PoolCapacity: capacity,
			Policy:       policy,
		})
		if err != nil {
			t.Fatal(err)
		}
		payload := make([]byte, fileSize)
		for i := 0; i < files; i++ {
			if err := m.PutTape(fmt.Sprintf("f%03d", i), payload); err != nil {
				t.Fatal(err)
			}
		}
		for _, idx := range workload.SampleZipf(files, 1.2, accesses, 11) {
			name := fmt.Sprintf("f%03d", idx)
			if _, err := m.Stage(name); err != nil {
				t.Fatal(err)
			}
			m.Release(name)
			// FIFO victims need distinguishable stage times.
			time.Sleep(time.Microsecond)
		}
		st := m.Stats()
		return float64(st.Hits) / float64(st.Hits+st.Misses)
	}
	lru := hitRate(mss.LRU)
	fifo := hitRate(mss.FIFO)
	if lru <= fifo {
		t.Fatalf("LRU hit rate %.3f should beat FIFO %.3f under Zipf access", lru, fifo)
	}
}

// BenchmarkRecluster measures the [Holt98] reclustering ablation: the cost
// of rewriting a dataset by type, and the file-locality gain a type-wise
// sparse selection sees afterwards.
func BenchmarkRecluster(b *testing.B) {
	ds, err := workload.Generate(workload.Config{
		Events:         500,
		Types:          []workload.ObjectSpec{{Type: "tag", Size: 64}, {Type: "esd", Size: 2048}},
		ObjectsPerFile: 50,
		Placement:      workload.ByEvent, // pessimal for type scans
		Dir:            b.TempDir(),
		Seed:           13,
	})
	if err != nil {
		b.Fatal(err)
	}
	fed := objectstore.NewFederation()
	defer fed.Close()
	for _, fm := range ds.Files {
		if _, err := fed.Attach(fm.Path); err != nil {
			b.Fatal(err)
		}
	}
	filesHolding := func(f *objectstore.Federation, typ string) int {
		dbs := make(map[uint32]bool)
		f.Scan(func(m objectstore.Meta) bool {
			if m.Type == typ {
				dbs[m.OID.DB] = true
			}
			return true
		})
		return len(dbs)
	}
	before := filesHolding(fed, "esd")
	b.ResetTimer()
	var after int
	for i := 0; i < b.N; i++ {
		out := b.TempDir()
		res, err := objrep.Recluster(fed, out, objrep.ClusterByType, 50, 10_000)
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		newFed := objectstore.NewFederation()
		for _, p := range res.Files {
			newFed.Attach(p)
		}
		after = filesHolding(newFed, "esd")
		newFed.Close()
		b.StartTimer()
	}
	b.ReportMetric(float64(before), "files-before")
	b.ReportMetric(float64(after), "files-after")
}

// BenchmarkAnalysisFunnel drives the Section 5.1 funnel over a materialized
// dataset: per step, the bytes each strategy would move across the WAN.
func BenchmarkAnalysisFunnel(b *testing.B) {
	const events = 2000
	types := []workload.ObjectSpec{
		{Type: "tag", Size: 64},
		{Type: "aod", Size: 512},
		{Type: "esd", Size: 4096},
		{Type: "raw", Size: 32768},
	}
	ds, err := workload.Generate(workload.Config{
		Events:         events,
		Types:          types,
		ObjectsPerFile: 200,
		Placement:      workload.ByType,
		Dir:            b.TempDir(),
		Seed:           3,
	})
	if err != nil {
		b.Fatal(err)
	}
	steps := workload.Funnel(events, types, 4)
	b.ResetTimer()
	for _, step := range steps {
		step := step
		b.Run(fmt.Sprintf("step=%s-%devents", step.ObjectType, step.Events), func(b *testing.B) {
			var objBytes, fileBytes int64
			for i := 0; i < b.N; i++ {
				sel := workload.SelectEvents(events, step.Events, int64(i+1))
				oids := ds.ObjectsFor(sel, step.ObjectType)
				var size int64
				for _, spec := range types {
					if spec.Type == step.ObjectType {
						size = int64(spec.Size)
					}
				}
				objBytes = int64(len(oids)) * size
				_, fileBytes = ds.FilesTouched(oids)
			}
			b.ReportMetric(float64(objBytes)/1e6, "MB-object-repl")
			b.ReportMetric(float64(fileBytes)/1e6, "MB-file-repl")
			if objBytes > 0 {
				b.ReportMetric(float64(fileBytes)/float64(objBytes), "x-overhead")
			}
		})
	}
}

// TestFunnelOverheadGrowsAsSelectionShrinks checks the funnel's economics:
// the sparser the selection, the worse file replication gets.
func TestFunnelOverheadGrowsAsSelectionShrinks(t *testing.T) {
	const events = 2000
	ds, err := workload.Generate(workload.Config{
		Events:         events,
		Types:          []workload.ObjectSpec{{Type: "esd", Size: 1024}},
		ObjectsPerFile: 100,
		Placement:      workload.ByType,
		Dir:            t.TempDir(),
		Seed:           5,
	})
	if err != nil {
		t.Fatal(err)
	}
	overhead := func(selected int) float64 {
		sel := workload.SelectEvents(events, selected, 9)
		oids := ds.ObjectsFor(sel, "esd")
		_, fileBytes := ds.FilesTouched(oids)
		return float64(fileBytes) / float64(int64(len(oids))*1024)
	}
	dense := overhead(events / 2) // 50% selection
	sparse := overhead(events / 100)
	if sparse <= dense {
		t.Fatalf("overhead should grow as selection shrinks: dense %.2f, sparse %.2f", dense, sparse)
	}
	if dense > 3 {
		t.Fatalf("dense selection overhead %.2f implausibly high", dense)
	}
}
