// Integration tests for the pull scheduler (internal/xfer) wired into
// core.Site: concurrent Gets of one LFN coalesce onto a single transfer
// whose real outcome fans out to every waiter, Recover reconciles past
// individual failures, and a canceled context aborts an in-flight
// transfer promptly instead of letting it run to completion.
package gdmp_test

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"strings"

	"gdmp/internal/faults"
	"gdmp/internal/obs"
	"gdmp/internal/retry"
	"gdmp/internal/testbed"
)

// TestConcurrentGetsCoalesce pins the in-flight dedup contract at the
// site level: N concurrent Gets of the same LFN must run exactly one
// replication, and every caller must see it succeed.
func TestConcurrentGetsCoalesce(t *testing.T) {
	seed := chaosSeed(t)
	g, err := testbed.NewGrid(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	prod, err := g.AddSite("cern.ch", testbed.SiteOptions{Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}

	// Slow the consumer's reads from the producer so the first Get is
	// still mid-replication while the other callers arrive.
	consReg := obs.NewRegistry()
	consFaults := faults.New(seed, func(c faults.ConnInfo) faults.Plan {
		if c.Addr == g.CatalogAddr {
			return faults.Plan{}
		}
		return faults.Plan{Latency: 20 * time.Millisecond}
	}, faults.WithMetrics(consReg))
	cons, err := g.AddSite("anl.gov", testbed.SiteOptions{
		Metrics: consReg,
		Faults:  consFaults,
	})
	if err != nil {
		t.Fatal(err)
	}

	data := testbed.MakeData(200_000, 11)
	pf := publishData(t, g, prod, "dedup/hot.db", data)

	const callers = 6
	start := make(chan struct{})
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			errs[i] = cons.Get(pf.LFN)
		}(i)
	}
	close(start)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: Get = %v", i, err)
		}
	}
	if !cons.HasFile(pf.LFN) {
		t.Fatal("file missing after Get")
	}
	text := consReg.Text()
	if got := metricValue(text, `gdmp_xfer_jobs_total{outcome="ok"}`); got != 1 {
		t.Errorf("scheduler ran %v jobs, want exactly 1 (dedup)", got)
	}
	if got := metricValue(text, "gdmp_xfer_dedup_total"); got != callers-1 {
		t.Errorf("dedup_total = %v, want %d", got, callers-1)
	}
}

// TestConcurrentGetsShareRealError is the regression test for the lost
// loser's error: when the shared replication fails, every waiter must
// receive the job's actual error — not a generic placeholder invented for
// the callers that merely joined an in-flight transfer.
func TestConcurrentGetsShareRealError(t *testing.T) {
	seed := chaosSeed(t)
	g, err := testbed.NewGrid(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	prod, err := g.AddSite("cern.ch", testbed.SiteOptions{Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	prodCtl := prod.Addr()

	// Delay every stage request so the failing job is still in flight
	// while the other callers submit and coalesce onto it.
	consReg := obs.NewRegistry()
	consFaults := faults.New(seed, func(c faults.ConnInfo) faults.Plan {
		if c.Addr == prodCtl {
			return faults.Plan{DialDelay: 150 * time.Millisecond}
		}
		return faults.Plan{}
	}, faults.WithMetrics(consReg))
	cons, err := g.AddSite("anl.gov", testbed.SiteOptions{
		Metrics: consReg,
		Faults:  consFaults,
		Retry:   fastRetry(2),
	})
	if err != nil {
		t.Fatal(err)
	}

	pf := publishData(t, g, prod, "dedup/bad.db", testbed.MakeData(50_000, 12))
	// Sabotage the file at its only source: staging fails, and with it
	// every replication attempt.
	if err := os.Remove(filepath.Join(prod.DataDir(), "dedup", "bad.db")); err != nil {
		t.Fatal(err)
	}

	const callers = 6
	start := make(chan struct{})
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			errs[i] = cons.Get(pf.LFN)
		}(i)
	}
	close(start)
	wg.Wait()

	for i, err := range errs {
		if err == nil {
			t.Fatalf("caller %d: Get succeeded against a sabotaged source", i)
		}
		if err.Error() != errs[0].Error() {
			t.Errorf("caller %d saw %q, caller 0 saw %q: all waiters must share the job's real error",
				i, err, errs[0])
		}
	}
	text := consReg.Text()
	if got := metricValue(text, `gdmp_xfer_jobs_total{outcome="error"}`); got != 1 {
		t.Errorf("scheduler ran %v failing jobs, want exactly 1 (dedup)", got)
	}
	if got := metricValue(text, "gdmp_xfer_dedup_total"); got != callers-1 {
		t.Errorf("dedup_total = %v, want %d", got, callers-1)
	}
}

// TestRecoverContinuesPastFailedFetch pins Recover's new contract: a file
// that cannot be fetched must not abort the reconciliation — the rest of
// the remote catalog is still pulled, the count reflects what actually
// arrived, and the error names the casualty.
func TestRecoverContinuesPastFailedFetch(t *testing.T) {
	g, err := testbed.NewGrid(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	prod, err := g.AddSite("cern.ch", testbed.SiteOptions{Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	cons, err := g.AddSite("anl.gov", testbed.SiteOptions{
		Metrics: obs.NewRegistry(),
		Retry:   fastRetry(2),
	})
	if err != nil {
		t.Fatal(err)
	}

	a := publishData(t, g, prod, "rc/a.db", testbed.MakeData(60_000, 13))
	bad := publishData(t, g, prod, "rc/bad.db", testbed.MakeData(60_000, 14))
	c := publishData(t, g, prod, "rc/c.db", testbed.MakeData(60_000, 15))
	if err := os.Remove(filepath.Join(prod.DataDir(), "rc", "bad.db")); err != nil {
		t.Fatal(err)
	}

	fetched, err := cons.Recover(prod.Addr())
	if err == nil {
		t.Fatal("Recover succeeded with an unfetchable file")
	}
	if !containsLFN(err, bad.LFN) {
		t.Fatalf("Recover error %v does not name the failed file %s", err, bad.LFN)
	}
	if fetched != 2 {
		t.Fatalf("Recover fetched %d files, want 2 (must continue past the failure)", fetched)
	}
	if !cons.HasFile(a.LFN) || !cons.HasFile(c.LFN) {
		t.Fatal("healthy files missing: Recover aborted early")
	}
	if cons.HasFile(bad.LFN) {
		t.Fatal("unfetchable file reported present")
	}
}

func containsLFN(err error, lfn string) bool {
	return err != nil && len(lfn) > 0 && strings.Contains(err.Error(), lfn)
}

// TestGetCancellationAbortsMidTransfer proves a canceled context severs a
// transfer that is already streaming: the waiter returns promptly (well
// within one retry interval — the base delay of the site's backoff
// policy), the scheduler records the job as canceled, and the partial
// file is not reported as local.
func TestGetCancellationAbortsMidTransfer(t *testing.T) {
	seed := chaosSeed(t)
	g, err := testbed.NewGrid(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	prod, err := g.AddSite("cern.ch", testbed.SiteOptions{Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	prodCtl := prod.Addr()

	// Every read from the producer's GridFTP endpoint crawls, so the
	// 2 MB transfer takes seconds — ample time to cancel it mid-stream.
	consReg := obs.NewRegistry()
	consFaults := faults.New(seed, func(c faults.ConnInfo) faults.Plan {
		switch c.Addr {
		case g.CatalogAddr, prodCtl:
			return faults.Plan{}
		}
		return faults.Plan{Latency: 20 * time.Millisecond}
	}, faults.WithMetrics(consReg))
	cons, err := g.AddSite("anl.gov", testbed.SiteOptions{
		Metrics:     consReg,
		Faults:      consFaults,
		Parallelism: 1,
		Retry: retry.Policy{
			Attempts:  3,
			BaseDelay: time.Second, // "one retry interval" for the bound below
			MaxDelay:  2 * time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	pf := publishData(t, g, prod, "cancel/big.db", testbed.MakeData(2<<20, 16))

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- cons.GetCtx(ctx, pf.LFN) }()

	// The GridFTP control connection and then a data connection each note
	// one latency fault on first read; two means the data channel is live
	// and bytes are moving.
	waitUntil(t, 10*time.Second, "transfer streaming", func() bool {
		return consFaults.Injected(faults.KindLatency) >= 2
	})
	canceledAt := time.Now()
	cancel()

	var getErr error
	select {
	case getErr = <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Get still blocked 5s after cancellation")
	}
	if waited := time.Since(canceledAt); waited > time.Second {
		t.Errorf("Get returned %v after cancellation, want within one retry interval (1s)", waited)
	}
	if !errors.Is(getErr, context.Canceled) {
		t.Errorf("Get = %v, want context.Canceled", getErr)
	}
	if cons.HasFile(pf.LFN) {
		t.Error("partial transfer reported as a local replica")
	}
	// The scheduler must account the aborted job as canceled (the worker
	// unwinds asynchronously after the waiter returns).
	waitUntil(t, 5*time.Second, "canceled job accounted", func() bool {
		return metricValue(consReg.Text(), `gdmp_xfer_jobs_total{outcome="canceled"}`) == 1
	})
}
