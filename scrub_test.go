// Self-healing integration tests: the scrubber, the anti-entropy
// exchange, and the repair driver must together bring a damaged grid back
// to a fully verified state, with the gdmp_scrub_* / gdmp_antientropy_* /
// gdmp_repair_* series accounting for every finding exactly.
//
// Every test logs its seed; set SCRUB_SEED to replay a run.
package gdmp_test

import (
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"testing"
	"time"

	"gdmp/internal/core"
	"gdmp/internal/faults"
	"gdmp/internal/obs"
	"gdmp/internal/testbed"
)

// scrubSeed returns the run's bit-rot seed (overridable with SCRUB_SEED)
// and logs it so a failure replays exactly.
func scrubSeed(t *testing.T) int64 {
	t.Helper()
	seed := int64(20260805)
	if s := os.Getenv("SCRUB_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("SCRUB_SEED %q: %v", s, err)
		}
		seed = v
	}
	t.Logf("scrub seed: %d (set SCRUB_SEED to replay)", seed)
	return seed
}

// TestSelfHealScrubAndAntiEntropy is the acceptance scenario: a subscriber
// whose replica silently rots on disk AND who missed one publication
// notification must converge back to a complete, verified catalog within
// one scrub pass plus one anti-entropy round — corrupt bytes quarantined,
// the replica re-pulled and CRC-verified, the missed file replicated, a
// planted dangling catalog location withdrawn, and every finding counted
// exactly once.
func TestSelfHealScrubAndAntiEntropy(t *testing.T) {
	seed := scrubSeed(t)
	ctx := context.Background()
	base := t.TempDir()
	g, err := testbed.NewGrid(base)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	prodReg, consReg := obs.NewRegistry(), obs.NewRegistry()
	prod, err := g.AddSite("cern.ch", testbed.SiteOptions{
		Durable: true,
		Metrics: prodReg,
		Retry:   fastRetry(3),
	})
	if err != nil {
		t.Fatal(err)
	}
	cons, err := g.AddSite("fnal.gov", testbed.SiteOptions{
		AutoReplicate:  true,
		Durable:        true,
		Metrics:        consReg,
		Retry:          fastRetry(3),
		ScrubRateBytes: 64 << 20, // fast, but through the rate limiter
	})
	if err != nil {
		t.Fatal(err)
	}

	// The missed notification: published before the consumer subscribes,
	// so no notice is ever queued for it.
	missedData := testbed.MakeData(24_000, seed+1)
	missed := publishData(t, g, prod, "heal/missed.db", missedData)

	if err := cons.SubscribeTo(prod.Addr()); err != nil {
		t.Fatal(err)
	}

	// The rotting file: replicated normally first.
	rotData := testbed.MakeData(48_000, seed+2)
	rot := publishData(t, g, prod, "heal/rotten.db", rotData)
	waitUntil(t, 10*time.Second, "auto-replication of the rotten file", func() bool {
		return cons.HasFile(rot.LFN)
	})

	// Bit-rot: flip three bytes of the consumer's replica in place.
	consRotPath := filepath.Join(cons.DataDir(), "heal", "rotten.db")
	if _, err := faults.FlipBytes(consRotPath, seed, 3); err != nil {
		t.Fatal(err)
	}

	// A dangling location: the catalog claims the consumer holds the
	// missed file, but it never arrived. Anti-entropy must withdraw it.
	dangling := "gridftp://" + cons.DataAddr() + "/heal/missed.db"
	if err := g.Catalog.AddReplica(missed.LFN, dangling); err != nil {
		t.Fatal(err)
	}

	// One scrub pass: the corruption is found, quarantined, and repaired.
	rep, err := cons.ScrubPass(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scanned != 1 || rep.Corrupt != 1 || rep.Missing != 0 || rep.Repairs != 1 || rep.Resumed {
		t.Fatalf("scrub report = %+v, want 1 scanned / 1 corrupt / 1 repair", rep)
	}
	if err := cons.RepairQuiesce(ctx); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(consRotPath)
	if err != nil {
		t.Fatal(err)
	}
	if !cons.HasFile(rot.LFN) || string(got) != string(rotData) {
		t.Fatal("rotten replica was not re-pulled byte-identically")
	}

	// One anti-entropy round: the missed file surfaces as a producer diff,
	// its dangling location is withdrawn, and the repair pulls it.
	ae, err := cons.AntiEntropyPass(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ae.Peers != 1 || ae.Failed != 0 || ae.Missing != 1 || ae.Dangling != 1 || ae.Repairs != 1 {
		t.Fatalf("anti-entropy report = %+v, want 1 peer / 1 missing / 1 dangling / 1 repair", ae)
	}
	if err := cons.RepairQuiesce(ctx); err != nil {
		t.Fatal(err)
	}
	got, err = os.ReadFile(filepath.Join(cons.DataDir(), "heal", "missed.db"))
	if err != nil {
		t.Fatal(err)
	}
	if !cons.HasFile(missed.LFN) || string(got) != string(missedData) {
		t.Fatal("missed file was not replicated byte-identically")
	}

	// The corrupt bytes are preserved as evidence.
	qdir := filepath.Join(base, "fnal.gov", "state", "quarantine")
	ents, err := os.ReadDir(qdir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("quarantine holds %d files, want 1", len(ents))
	}
	qbytes, err := os.ReadFile(filepath.Join(qdir, ents[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if len(qbytes) != len(rotData) || string(qbytes) == string(rotData) {
		t.Fatal("quarantined bytes are not the corrupted replica")
	}

	// The producer's own round against its subscriber finds nothing left.
	aeProd, err := prod.AntiEntropyPass(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if aeProd.Peers != 1 || aeProd.Failed != 0 || aeProd.Missing != 0 ||
		aeProd.Stale != 0 || aeProd.Dangling != 0 || aeProd.Repairs != 0 {
		t.Fatalf("producer anti-entropy after healing = %+v, want all clear", aeProd)
	}

	if st := cons.Status(); st.Journal != "ok" {
		t.Fatalf("consumer journal health = %q, want ok", st.Journal)
	}

	// Exact accounting: every finding counted once, nothing else.
	text := consReg.Text()
	for series, want := range map[string]float64{
		"gdmp_scrub_files_scanned_total":               1,
		"gdmp_scrub_bytes_scanned_total":               float64(len(rotData)),
		"gdmp_scrub_corrupt_total":                     1,
		"gdmp_scrub_missing_total":                     0,
		"gdmp_scrub_passes_total":                      1,
		"gdmp_scrub_quarantine_files":                  1,
		"gdmp_scrub_quarantine_swept_total":            0,
		"gdmp_antientropy_rounds_total":                1,
		`gdmp_antientropy_peers_total{outcome="ok"}`:   1,
		`gdmp_antientropy_diff_total{kind="missing"}`:  1,
		`gdmp_antientropy_diff_total{kind="dangling"}`: 1,
		"gdmp_repair_attempts_total":                   2,
		"gdmp_repair_success_total":                    2,
		"gdmp_repair_failure_total":                    0,
	} {
		if got := metricValue(text, series); got != want {
			t.Errorf("%s = %v, want %v", series, got, want)
		}
	}
}

// TestAntiEntropyConvergenceProperty is the property-style check: two
// sites whose catalogs are randomly diverged — bit-rot, vanished bytes,
// and withdrawn replicas on either side — must reach an identical, fully
// verified state within a bounded number of scrub + anti-entropy rounds.
func TestAntiEntropyConvergenceProperty(t *testing.T) {
	const (
		nFiles    = 8
		maxRounds = 4
	)
	seed := scrubSeed(t)
	rng := rand.New(rand.NewSource(seed))
	ctx := context.Background()
	g, err := testbed.NewGrid(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	prod, err := g.AddSite("cern.ch", testbed.SiteOptions{
		Durable: true,
		Metrics: obs.NewRegistry(),
		Retry:   fastRetry(3),
	})
	if err != nil {
		t.Fatal(err)
	}
	cons, err := g.AddSite("fnal.gov", testbed.SiteOptions{
		Durable: true,
		Metrics: obs.NewRegistry(),
		Retry:   fastRetry(3),
	})
	if err != nil {
		t.Fatal(err)
	}

	// Publish on the producer, replicate everything to the consumer.
	rels := make([]string, nFiles)
	data := make(map[string][]byte, nFiles)
	lfns := make([]string, nFiles)
	for i := range rels {
		rels[i] = filepath.Join("prop", "f"+strconv.Itoa(i)+".db")
		d := testbed.MakeData(4096+rng.Intn(28_672), seed+int64(i))
		pf := publishData(t, g, prod, rels[i], d)
		data[pf.LFN] = d
		lfns[i] = pf.LFN
	}
	if err := cons.SubscribeTo(prod.Addr()); err != nil {
		t.Fatal(err)
	}
	for _, lfn := range lfns {
		if err := cons.Get(lfn); err != nil {
			t.Fatal(err)
		}
	}

	// Diverge. One roll per file so the two sites never lose the same
	// bytes simultaneously (an unrecoverable state no protocol can heal).
	// The first four files force one scenario each so every code path runs
	// regardless of seed; the rest roll randomly.
	const (
		dIntact = iota
		dFlipCons
		dDeleteCons
		dWithdrawCons
		dFlipProd
		dDeleteProd
		dKinds
	)
	damaged := make([]int, nFiles)
	for i, lfn := range lfns {
		kind := i + 1 // forced coverage: files 0..3 take dFlipCons..dFlipProd
		if kind > dFlipProd {
			kind = rng.Intn(dKinds)
		}
		damaged[i] = kind
		consPath := filepath.Join(cons.DataDir(), rels[i])
		prodPath := filepath.Join(prod.DataDir(), rels[i])
		switch kind {
		case dFlipCons:
			if _, err := faults.FlipBytes(consPath, rng.Int63(), 1+rng.Intn(4)); err != nil {
				t.Fatal(err)
			}
		case dDeleteCons:
			if err := os.Remove(consPath); err != nil {
				t.Fatal(err)
			}
		case dWithdrawCons:
			if err := cons.RemoveLocal(lfn); err != nil {
				t.Fatal(err)
			}
		case dFlipProd:
			if _, err := faults.FlipBytes(prodPath, rng.Int63(), 1+rng.Intn(4)); err != nil {
				t.Fatal(err)
			}
		case dDeleteProd:
			if err := os.Remove(prodPath); err != nil {
				t.Fatal(err)
			}
		}
	}
	t.Logf("divergence rolls: %v", damaged)

	// Rounds of scrub + anti-entropy + repair on both sides.
	intact := func(s *core.Site, dataDir string) bool {
		for i, lfn := range lfns {
			if !s.HasFile(lfn) {
				return false
			}
			got, err := os.ReadFile(filepath.Join(dataDir, rels[i]))
			if err != nil || string(got) != string(data[lfn]) {
				return false
			}
		}
		return true
	}
	rounds := 0
	for ; rounds < maxRounds; rounds++ {
		for _, s := range []*core.Site{prod, cons} {
			if _, err := s.ScrubPass(ctx); err != nil {
				t.Fatal(err)
			}
			if _, err := s.AntiEntropyPass(ctx); err != nil {
				t.Fatal(err)
			}
			if err := s.RepairQuiesce(ctx); err != nil {
				t.Fatal(err)
			}
		}
		if intact(prod, prod.DataDir()) && intact(cons, cons.DataDir()) {
			break
		}
	}
	if rounds == maxRounds {
		t.Fatalf("grids did not converge within %d rounds", maxRounds)
	}
	t.Logf("converged after %d round(s)", rounds+1)

	// The converged state is verified (a final scrub finds nothing) and
	// the two catalogs are entry-for-entry identical.
	for _, s := range []*core.Site{prod, cons} {
		rep, err := s.ScrubPass(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Scanned != nFiles || rep.Corrupt != 0 || rep.Missing != 0 {
			t.Fatalf("%s post-convergence scrub = %+v, want %d clean files",
				s.Name(), rep, nFiles)
		}
	}
	type entry struct {
		lfn, crc string
		size     int64
	}
	digest := func(s *core.Site) []entry {
		var out []entry
		for _, fi := range s.LocalFiles() {
			out = append(out, entry{fi.LFN, fi.CRC32, fi.Size})
		}
		sort.Slice(out, func(i, j int) bool { return out[i].lfn < out[j].lfn })
		return out
	}
	dp, dc := digest(prod), digest(cons)
	if len(dp) != nFiles || len(dc) != nFiles {
		t.Fatalf("digest sizes %d/%d, want %d", len(dp), len(dc), nFiles)
	}
	for i := range dp {
		if dp[i] != dc[i] {
			t.Fatalf("digests diverge at %d: producer %+v, consumer %+v", i, dp[i], dc[i])
		}
	}
}

// TestQuarantineRetentionBounds pins the quarantine sweep: the count cap
// trims the oldest evidence after a scrub pass, and the age cap reclaims
// files once they outlive the configured retention.
func TestQuarantineRetentionBounds(t *testing.T) {
	seed := scrubSeed(t)
	ctx := context.Background()
	base := t.TempDir()
	g, err := testbed.NewGrid(base)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	countReg, ageReg := obs.NewRegistry(), obs.NewRegistry()
	byCount, err := g.AddSite("desy.de", testbed.SiteOptions{
		Durable:            true,
		Metrics:            countReg,
		Retry:              fastRetry(1),
		QuarantineMaxCount: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	byAge, err := g.AddSite("in2p3.fr", testbed.SiteOptions{
		Durable:          true,
		Metrics:          ageReg,
		Retry:            fastRetry(1),
		QuarantineMaxAge: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Count cap: four corrupt replicas quarantined in one pass, only the
	// two newest survive the sweep. The repairs are expected to fail —
	// these files have no other replica — and that must be accounted too.
	for i := 0; i < 4; i++ {
		rel := filepath.Join("q", "c"+strconv.Itoa(i)+".db")
		publishData(t, g, byCount, rel, testbed.MakeData(2048, seed+int64(i)))
		if _, err := faults.FlipBytes(filepath.Join(byCount.DataDir(), rel), seed+int64(i), 1); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := byCount.ScrubPass(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Corrupt != 4 {
		t.Fatalf("scrub found %d corrupt, want 4", rep.Corrupt)
	}
	if err := byCount.RepairQuiesce(ctx); err != nil {
		t.Fatal(err)
	}
	qdir := filepath.Join(base, "desy.de", "state", "quarantine")
	ents, err := os.ReadDir(qdir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 2 {
		t.Fatalf("quarantine holds %d files after count sweep, want 2", len(ents))
	}
	text := countReg.Text()
	for series, want := range map[string]float64{
		"gdmp_scrub_corrupt_total":          4,
		"gdmp_scrub_quarantine_swept_total": 2,
		"gdmp_scrub_quarantine_files":       2,
		"gdmp_repair_failure_total":         4,
		"gdmp_repair_success_total":         0,
	} {
		if got := metricValue(text, series); got != want {
			t.Errorf("%s = %v, want %v", series, got, want)
		}
	}

	// Age cap: quarantined files backdated past the retention window are
	// reclaimed by the next pass's sweep.
	for i := 0; i < 2; i++ {
		rel := filepath.Join("q", "a"+strconv.Itoa(i)+".db")
		publishData(t, g, byAge, rel, testbed.MakeData(2048, seed+10+int64(i)))
		if _, err := faults.FlipBytes(filepath.Join(byAge.DataDir(), rel), seed+10+int64(i), 1); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := byAge.ScrubPass(ctx); err != nil {
		t.Fatal(err)
	}
	if err := byAge.RepairQuiesce(ctx); err != nil {
		t.Fatal(err)
	}
	qdir = filepath.Join(base, "in2p3.fr", "state", "quarantine")
	ents, err = os.ReadDir(qdir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 2 {
		t.Fatalf("quarantine holds %d files before aging, want 2", len(ents))
	}
	old := time.Now().Add(-2 * time.Hour)
	for _, e := range ents {
		if err := os.Chtimes(filepath.Join(qdir, e.Name()), old, old); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := byAge.ScrubPass(ctx); err != nil {
		t.Fatal(err)
	}
	ents, err = os.ReadDir(qdir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("quarantine holds %d files after age sweep, want 0", len(ents))
	}
	text = ageReg.Text()
	for series, want := range map[string]float64{
		"gdmp_scrub_quarantine_swept_total": 2,
		"gdmp_scrub_quarantine_files":       0,
	} {
		if got := metricValue(text, series); got != want {
			t.Errorf("%s = %v, want %v", series, got, want)
		}
	}
}
