// Benchmark harness: one benchmark per table, figure, and quantified claim
// of the paper's evaluation. See DESIGN.md section 4 for the experiment
// index and EXPERIMENTS.md for recorded paper-vs-measured outcomes.
//
// Run everything:   go test -bench=. -benchmem
// One experiment:   go test -bench=Figure5 -v   (tables print with -v)
package gdmp_test

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"gdmp/internal/core"
	"gdmp/internal/gridftp"
	"gdmp/internal/gsi"
	"gdmp/internal/netsim"
	"gdmp/internal/objectstore"
	"gdmp/internal/objrep"
	"gdmp/internal/replica"
	"gdmp/internal/testbed"
	"gdmp/internal/wan"
	"gdmp/internal/workload"
)

func TestMain(m *testing.M) {
	gsi.KeyBits = 1024 // smaller keys keep grid setup fast; protocols unchanged
	os.Exit(m.Run())
}

// --- Figure 5: transfer rate vs parallel streams, untuned 64 KB buffers ----

func BenchmarkFigure5(b *testing.B) {
	benchmarkStreamFigure(b, netsim.UntunedBufferBytes)
}

// --- Figure 6: the same sweep with buffers tuned to 1 MB -------------------

func BenchmarkFigure6(b *testing.B) {
	benchmarkStreamFigure(b, netsim.TunedBufferBytes)
}

func benchmarkStreamFigure(b *testing.B, buffer int) {
	cfg := netsim.CERNtoANL()
	for _, mb := range netsim.FigureFileSizesMB {
		for streams := 1; streams <= 10; streams++ {
			name := fmt.Sprintf("file=%dMB/streams=%d", mb, streams)
			b.Run(name, func(b *testing.B) {
				var mean float64
				for i := 0; i < b.N; i++ {
					m, err := netsim.MeanThroughputMbps(cfg, netsim.Transfer{
						FileBytes:   int64(mb) * netsim.MB,
						Streams:     streams,
						BufferBytes: buffer,
					}, 5)
					if err != nil {
						b.Fatal(err)
					}
					mean = m
				}
				b.ReportMetric(mean, "Mbps")
			})
		}
	}
	b.Run("table", func(b *testing.B) {
		var sw netsim.Sweep
		for i := 0; i < b.N; i++ {
			var err error
			sw, err = netsim.StreamSweep(cfg, netsim.FigureFileSizesMB, 10, buffer, 5)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.Logf("buffer=%d bytes\n%s", buffer, sw.Table())
	})
}

// --- Section 6 conclusions C1..C4 ------------------------------------------

func rateAt(b *testing.B, streams, buffer int) float64 {
	b.Helper()
	m, err := netsim.MeanThroughputMbps(netsim.CERNtoANL(), netsim.Transfer{
		FileBytes:   100 * netsim.MB,
		Streams:     streams,
		BufferBytes: buffer,
	}, 8)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkConclusionBufferDominates (C1): "proper TCP buffer size setting
// is the single most important factor in achieving good performance".
func BenchmarkConclusionBufferDominates(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		untuned := rateAt(b, 1, netsim.UntunedBufferBytes)
		tuned := rateAt(b, 1, netsim.TunedBufferBytes)
		gain = tuned / untuned
	}
	b.ReportMetric(gain, "x(tuned/untuned,1stream)")
}

// BenchmarkConclusionUntunedParallelEqualsTuned (C2): "the performance
// obtained from 10 streams with untuned buffers can be achieved with just
// 2-3 streams if the tuning is proper".
func BenchmarkConclusionUntunedParallelEqualsTuned(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		untuned10 := rateAt(b, 10, netsim.UntunedBufferBytes)
		tuned3 := rateAt(b, 3, netsim.TunedBufferBytes)
		ratio = untuned10 / tuned3
	}
	b.ReportMetric(ratio, "x(untuned10/tuned3)")
}

// BenchmarkConclusionParallelGain (C3): "2-3 tuned parallel streams will
// gain an additional 25% performance over a single tuned stream".
func BenchmarkConclusionParallelGain(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		one := rateAt(b, 1, netsim.TunedBufferBytes)
		two := rateAt(b, 2, netsim.TunedBufferBytes)
		three := rateAt(b, 3, netsim.TunedBufferBytes)
		best := two
		if three > best {
			best = three
		}
		gain = best/one - 1
	}
	b.ReportMetric(gain*100, "%gain(2-3streams)")
}

// BenchmarkConclusionUntunedCatchesUp (C4): "it is possible to get the same
// throughput as tuned buffers using untuned TCP buffers with enough
// parallel streams".
func BenchmarkConclusionUntunedCatchesUp(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		var untunedPeak float64
		for s := 1; s <= 10; s++ {
			if r := rateAt(b, s, netsim.UntunedBufferBytes); r > untunedPeak {
				untunedPeak = r
			}
		}
		var tunedPeak float64
		for s := 1; s <= 10; s++ {
			if r := rateAt(b, s, netsim.TunedBufferBytes); r > tunedPeak {
				tunedPeak = r
			}
		}
		ratio = untunedPeak / tunedPeak
	}
	b.ReportMetric(ratio, "x(untunedPeak/tunedPeak)")
}

// --- T-buffer: optimal buffer = RTT x bottleneck bandwidth [Tier00] --------

func BenchmarkOptimalBufferFormula(b *testing.B) {
	cfg := netsim.CERNtoANL()
	cfg.LossRate = 0
	opt := netsim.OptimalBufferBytes(cfg)
	buffers := []int{opt / 8, opt / 4, opt / 2, opt, 2 * opt, 4 * opt}
	for _, buf := range buffers {
		b.Run(fmt.Sprintf("buffer=%dKB", buf/1024), func(b *testing.B) {
			var rate float64
			for i := 0; i < b.N; i++ {
				r, err := netsim.Simulate(cfg, netsim.Transfer{
					FileBytes: 100 * netsim.MB, Streams: 1, BufferBytes: buf,
				})
				if err != nil {
					b.Fatal(err)
				}
				rate = r.ThroughputMbps
			}
			b.ReportMetric(rate, "Mbps")
		})
	}
	b.Logf("formula optimum: %d bytes (RTT x available bandwidth)", opt)
}

// --- E-sparse: Section 5.1, file vs object replication for selections ------

// BenchmarkSparseSelectionFileVsObject evaluates the paper's example at
// full scale analytically (10^6 of 10^9 events, 10 KB objects) and at
// laptop scale empirically with materialized database files.
func BenchmarkSparseSelectionFileVsObject(b *testing.B) {
	b.Run("paper-scale-analytic", func(b *testing.B) {
		var m workload.SparseModel
		for i := 0; i < b.N; i++ {
			m = workload.SparseModel{
				Events:         1_000_000_000,
				Selected:       1_000_000,
				ObjectsPerFile: 1000,
				ObjectSize:     10_000,
			}
			_ = m.Overhead()
		}
		b.ReportMetric(m.ObjectBytes()/1e9, "GB-object-repl")
		b.ReportMetric(m.FileBytes()/1e9, "GB-file-repl")
		b.ReportMetric(m.Overhead(), "x-overhead")
		b.ReportMetric(m.ProbMajoritySelected(), "P(file>50%selected)")
	})

	b.Run("materialized", func(b *testing.B) {
		dir := b.TempDir()
		ds, err := workload.Generate(workload.Config{
			Events:         5000,
			Types:          []workload.ObjectSpec{{Type: "esd", Size: 2048}},
			ObjectsPerFile: 100,
			Placement:      workload.ByType,
			Dir:            dir,
			Seed:           1,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		var objBytes, fileBytes int64
		for i := 0; i < b.N; i++ {
			sel := workload.SelectEvents(5000, 50, int64(i+1))
			oids := ds.ObjectsFor(sel, "esd")
			objBytes = int64(len(oids)) * 2048
			_, fileBytes = ds.FilesTouched(oids)
		}
		b.ReportMetric(float64(fileBytes)/float64(objBytes), "x-overhead")
	})
}

// --- E-pipeline: Section 5.2/5.3, pipelined copy+transfer ablation ---------

// BenchmarkObjectPipelineAblation replicates the same object selection with
// and without pipelining over a WAN-shaped link, measuring the response
// time gain of overlapping the copier with the transfer.
func BenchmarkObjectPipelineAblation(b *testing.B) {
	link := wan.NewLink(200, 10*time.Millisecond) // fast-but-latent WAN

	run := func(b *testing.B, pipelined bool) {
		g, err := testbed.NewGrid(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		defer g.Close()
		objrep.AllowServiceUseAll(g.ACL)
		src, err := g.AddSite("cern.ch", testbed.SiteOptions{WithFederation: true})
		if err != nil {
			b.Fatal(err)
		}
		dest, err := g.AddSite("anl.gov", testbed.SiteOptions{
			WithFederation: true,
			DialFunc:       link.Dialer(nil),
		})
		if err != nil {
			b.Fatal(err)
		}
		ds, err := workload.Generate(workload.Config{
			Events:         64,
			Types:          []workload.ObjectSpec{{Type: "esd", Size: 16 * 1024}},
			ObjectsPerFile: 16,
			Placement:      workload.ByType,
			Dir:            filepath.Join(src.DataDir(), "dataset"),
			Seed:           7,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, fm := range ds.Files {
			if _, err := src.Federation().Attach(fm.Path); err != nil {
				b.Fatal(err)
			}
		}
		if err := objrep.EnableService(src); err != nil {
			b.Fatal(err)
		}
		sel := workload.SelectEvents(64, 32, 3)
		oids := ds.ObjectsFor(sel, "esd")

		b.ResetTimer()
		var elapsed time.Duration
		for i := 0; i < b.N; i++ {
			r := &objrep.Replicator{
				Dest: dest, SourceCtl: src.Addr(), SourceName: "cern.ch",
				BatchSize: 8, Pipelined: pipelined,
			}
			stats, err := r.Replicate(oids)
			if err != nil {
				b.Fatal(err)
			}
			elapsed = stats.Elapsed
			b.StopTimer()
			// Reset destination state for the next iteration.
			for _, fi := range dest.LocalFiles() {
				dest.RemoveLocal(fi.LFN)
			}
			for _, id := range dest.Federation().Databases() {
				dest.Federation().Detach(id)
			}
			b.StartTimer()
		}
		b.ReportMetric(elapsed.Seconds()*1000, "ms/cycle")
	}

	b.Run("sequential", func(b *testing.B) { run(b, false) })
	b.Run("pipelined", func(b *testing.B) { run(b, true) })
}

// --- E-e2e: full GDMP replication over emulated WAN sockets ----------------

func BenchmarkEndToEndReplication(b *testing.B) {
	for _, cse := range []struct {
		name    string
		mbps    float64
		rtt     time.Duration
		streams int
		sizeMB  int
	}{
		{"loopback/1MB", 0, 0, 2, 1},
		{"wan25Mbps/1MB/2streams", 25, 20 * time.Millisecond, 2, 1},
		{"wan25Mbps/1MB/4streams", 25, 20 * time.Millisecond, 4, 1},
	} {
		b.Run(cse.name, func(b *testing.B) {
			g, err := testbed.NewGrid(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			defer g.Close()
			var dialFunc func(network, addr string) (net.Conn, error)
			if cse.mbps > 0 {
				dialFunc = wan.NewLink(cse.mbps, cse.rtt).Dialer(nil)
			}
			cern, err := g.AddSite("cern.ch", testbed.SiteOptions{Parallelism: cse.streams})
			if err != nil {
				b.Fatal(err)
			}
			anl, err := g.AddSite("anl.gov", testbed.SiteOptions{
				Parallelism: cse.streams,
				DialFunc:    dialFunc,
			})
			if err != nil {
				b.Fatal(err)
			}
			data := testbed.MakeData(cse.sizeMB*1024*1024, 1)

			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				rel := fmt.Sprintf("bench/f%06d.db", i)
				if _, err := g.WriteSiteFile("cern.ch", rel, data); err != nil {
					b.Fatal(err)
				}
				pf, err := cern.Publish(rel, core.PublishOptions{})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if err := anl.Get(pf.LFN); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(len(data)))
		})
	}
}

// --- E-stage: Section 4.4 staging, cold vs warm disk pool ------------------

func BenchmarkMSSStaging(b *testing.B) {
	g, err := testbed.NewGrid(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer g.Close()
	cern, err := g.AddSite("cern.ch", testbed.SiteOptions{
		WithMSS:      true,
		MountLatency: 20 * time.Millisecond, // scaled-down tape mount
		TapeRateMBps: 200,
	})
	if err != nil {
		b.Fatal(err)
	}
	anl, err := g.AddSite("anl.gov", testbed.SiteOptions{})
	if err != nil {
		b.Fatal(err)
	}
	data := testbed.MakeData(512*1024, 2)
	if _, err := g.WriteSiteFile("cern.ch", "cold.db", data); err != nil {
		b.Fatal(err)
	}
	pf, err := cern.Publish("cold.db", core.PublishOptions{})
	if err != nil {
		b.Fatal(err)
	}
	if err := cern.ArchiveLocal(pf.LFN); err != nil {
		b.Fatal(err)
	}
	poolPath := filepath.Join(cern.DataDir(), "cold.db")

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			os.Remove(poolPath) // force a tape stage
			os.RemoveAll(filepath.Join(anl.DataDir(), "cold.db"))
			anlReset(anl, pf.LFN)
			b.StartTimer()
			if err := anl.Get(pf.LFN); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(int64(len(data)))
	})
	b.Run("warm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			os.RemoveAll(filepath.Join(anl.DataDir(), "cold.db"))
			anlReset(anl, pf.LFN)
			b.StartTimer()
			if err := anl.Get(pf.LFN); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(int64(len(data)))
	})
}

// anlReset forgets a replica at the destination so Get re-fetches it.
func anlReset(site *core.Site, lfn string) {
	if site.HasFile(lfn) {
		site.RemoveLocal(lfn)
	}
}

// --- ablation: associated-file closure (Section 2.1) -----------------------

// BenchmarkAssociationClosure measures the cost of computing the
// associated-files closure that keeps navigation intact, as a function of
// the cross-file association chain length.
func BenchmarkAssociationClosure(b *testing.B) {
	for _, chain := range []int{2, 8, 32} {
		b.Run(fmt.Sprintf("chain=%d", chain), func(b *testing.B) {
			dir := b.TempDir()
			fed := objectstore.NewFederation()
			defer fed.Close()
			for i := chain; i >= 1; i-- {
				path := filepath.Join(dir, fmt.Sprintf("db%d.odb", i))
				w, err := objectstore.Create(path, uint32(i))
				if err != nil {
					b.Fatal(err)
				}
				obj := &objectstore.Object{OID: objectstore.OID{Slot: 1}, Type: "t", Data: []byte("x")}
				if i < chain {
					obj.Assocs = []objectstore.OID{{DB: uint32(i + 1), Slot: 1}}
				}
				if err := w.Add(obj); err != nil {
					b.Fatal(err)
				}
				if err := w.Close(); err != nil {
					b.Fatal(err)
				}
				if _, err := fed.Attach(path); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				closure, _, err := fed.AssociationClosure([]uint32{1})
				if err != nil {
					b.Fatal(err)
				}
				if len(closure) != chain {
					b.Fatalf("closure = %d", len(closure))
				}
			}
		})
	}
}

// --- micro-benchmarks: substrate costs --------------------------------------

// BenchmarkGridFTPLoopback measures the raw socket implementation's
// throughput on loopback at several stream counts (protocol overhead, not
// WAN behavior — that is netsim's job).
func BenchmarkGridFTPLoopback(b *testing.B) {
	ca, err := gsi.NewCA("bench", time.Hour)
	if err != nil {
		b.Fatal(err)
	}
	roots := []*gsi.Certificate{ca.Certificate()}
	serverCred, err := ca.Issue("gridftpd/bench", time.Hour)
	if err != nil {
		b.Fatal(err)
	}
	clientCred, err := ca.Issue("bench-client", time.Hour)
	if err != nil {
		b.Fatal(err)
	}
	acl := gsi.NewACL()
	acl.AllowAll(gridftp.OpRead, gridftp.OpWrite)
	root := b.TempDir()
	const size = 8 << 20
	if err := os.WriteFile(filepath.Join(root, "bench.db"), testbed.MakeData(size, 4), 0o644); err != nil {
		b.Fatal(err)
	}
	srv, err := gridftp.NewServer(gridftp.ServerConfig{
		Root: root, Cred: serverCred, TrustRoots: roots, ACL: acl,
	})
	if err != nil {
		b.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	for _, streams := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("streams=%d", streams), func(b *testing.B) {
			cl, err := gridftp.Dial(ln.Addr().String(), clientCred, roots,
				gridftp.WithParallelism(streams))
			if err != nil {
				b.Fatal(err)
			}
			defer cl.Close()
			dst := make(writerAtBuffer, size)
			b.SetBytes(size)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cl.Get("bench.db", dst); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// writerAtBuffer is a fixed in-memory io.WriterAt.
type writerAtBuffer []byte

func (w writerAtBuffer) WriteAt(p []byte, off int64) (int, error) {
	return copy(w[off:], p), nil
}

func BenchmarkReplicaCatalogOps(b *testing.B) {
	cat := replica.NewCatalog()
	for i := 0; i < 10_000; i++ {
		cat.Register(fmt.Sprintf("lfn://bench/f%06d", i), map[string]string{
			replica.AttrSize: fmt.Sprint(i * 1000),
		})
	}
	b.Run("lookup", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cat.Lookup(fmt.Sprintf("lfn://bench/f%06d", i%10_000)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("query-filter", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			got, err := cat.Query("(size>=9000000)")
			if err != nil {
				b.Fatal(err)
			}
			if len(got) == 0 {
				b.Fatal("empty result")
			}
		}
	})
}

func BenchmarkObjectStoreRead(b *testing.B) {
	dir := b.TempDir()
	path := filepath.Join(dir, "bench.odb")
	w, err := objectstore.Create(path, 1)
	if err != nil {
		b.Fatal(err)
	}
	payload := testbed.MakeData(4096, 3)
	const n = 1000
	for i := uint32(1); i <= n; i++ {
		if err := w.Add(&objectstore.Object{OID: objectstore.OID{Slot: i}, Type: "t", Event: uint64(i), Data: payload}); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	db, err := objectstore.Open(path)
	if err != nil {
		b.Fatal(err)
	}
	defer db.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Read(uint32(i%n) + 1); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(4096)
}
