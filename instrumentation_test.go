// Integration tests for the obs instrumentation layer: the metrics the
// system reports must match, byte for byte and op for op, what actually
// happened on the wire and in the catalog.
package gdmp_test

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"gdmp/internal/core"
	"gdmp/internal/gridftp"
	"gdmp/internal/gsi"
	"gdmp/internal/obs"
	"gdmp/internal/replica"
	"gdmp/internal/testbed"
)

// metricValue extracts the value of one exposition line ("name value" or
// "name{labels} value") from a registry dump, or -1 if absent.
func metricValue(text, series string) float64 {
	for _, line := range strings.Split(text, "\n") {
		rest, ok := strings.CutPrefix(line, series+" ")
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			return -1
		}
		return v
	}
	return -1
}

// TestTransferAccountingExact moves a file of known odd size over GridFTP
// with a fixed stream count and asserts the instrumentation reports
// exactly those bytes and exactly that parallelism, on both ends.
func TestTransferAccountingExact(t *testing.T) {
	const (
		size    = 1_234_567
		streams = 4
	)
	reg := obs.NewRegistry()

	ca, err := gsi.NewCA("obs-test", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	roots := []*gsi.Certificate{ca.Certificate()}
	serverCred, err := ca.Issue("gridftpd/obs", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	clientCred, err := ca.Issue("obs-client", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	acl := gsi.NewACL()
	acl.AllowAll(gridftp.OpRead, gridftp.OpWrite)
	root := t.TempDir()
	if err := os.WriteFile(filepath.Join(root, "exact.db"), testbed.MakeData(size, 11), 0o644); err != nil {
		t.Fatal(err)
	}
	srv, err := gridftp.NewServer(gridftp.ServerConfig{
		Root: root, Cred: serverCred, TrustRoots: roots, ACL: acl, Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	cl, err := gridftp.Dial(ln.Addr().String(), clientCred, roots,
		gridftp.WithParallelism(streams), gridftp.WithMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	dst := make(writerAtBuffer, size)
	stats, err := cl.Get("exact.db", dst)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Bytes != size {
		t.Fatalf("TransferStats.Bytes = %d, want %d", stats.Bytes, size)
	}

	// The recorder rebinds to the same collectors through the registry.
	rec := obs.NewTransferRecorder(reg, gridftp.ClientMetricsPrefix)
	if got := rec.Transfers("get", "ok"); got != 1 {
		t.Errorf("client transfers{get,ok} = %d, want 1", got)
	}
	if got := rec.Transfers("get", "error"); got != 0 {
		t.Errorf("client transfers{get,error} = %d, want 0", got)
	}
	if got := rec.Bytes("get"); got != size {
		t.Errorf("client bytes{get} = %d, want exactly %d", got, size)
	}

	text := reg.Text()
	checks := map[string]float64{
		`gdmp_gridftp_client_bytes_total{direction="get"}`:              size,
		`gdmp_gridftp_client_streams_sum`:                               streams,
		`gdmp_gridftp_client_streams_count`:                             1,
		`gdmp_gridftp_server_bytes_total{direction="sent"}`:             size,
		`gdmp_gridftp_server_transfers_total{verb="ERET",outcome="ok"}`: 1,
		`gdmp_gridftp_server_streams_sum`:                               streams,
	}
	for series, want := range checks {
		if got := metricValue(text, series); got != want {
			t.Errorf("%s = %v, want %v\nexposition:\n%s", series, got, want, text)
		}
	}
}

// TestCatalogLookupSingleOpCounter asserts one catalog lookup moves the op
// counters by exactly one increment, on exactly the lookup series.
func TestCatalogLookupSingleOpCounter(t *testing.T) {
	reg := obs.NewRegistry()
	cat := replica.NewCatalogWithMetrics(reg)
	if err := cat.Register("lfn://t/one", map[string]string{replica.AttrSize: "1"}); err != nil {
		t.Fatal(err)
	}

	sumOps := func() float64 {
		var total float64
		for _, line := range strings.Split(reg.Text(), "\n") {
			if !strings.HasPrefix(line, replica.CatalogMetricsPrefix+"_ops_total{") {
				continue
			}
			f := strings.Fields(line)
			v, err := strconv.ParseFloat(f[len(f)-1], 64)
			if err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			total += v
		}
		return total
	}

	before := sumOps()
	if _, err := cat.Lookup("lfn://t/one"); err != nil {
		t.Fatal(err)
	}
	after := sumOps()

	if after-before != 1 {
		t.Errorf("lookup moved op counters by %v, want exactly 1", after-before)
	}
	if got := cat.OpCount("lookup", "ok"); got != 1 {
		t.Errorf("ops{lookup,ok} = %d, want 1", got)
	}
	if got := cat.OpCount("lookup", "error"); got != 0 {
		t.Errorf("ops{lookup,error} = %d, want 0", got)
	}
	// The latency histogram saw the same single operation.
	if got := metricValue(reg.Text(), replica.CatalogMetricsPrefix+`_op_seconds_count{op="lookup"}`); got != 1 {
		t.Errorf("op_seconds_count{op=lookup} = %v, want 1", got)
	}
}

// TestSiteMetricsEndToEnd runs a publish/subscribe/replicate cycle with
// per-site registries and checks the site-level series, including the
// metrics dump served over the authenticated control channel.
func TestSiteMetricsEndToEnd(t *testing.T) {
	g, err := testbed.NewGrid(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	prodReg, consReg := obs.NewRegistry(), obs.NewRegistry()
	cern, err := g.AddSite("cern.ch", testbed.SiteOptions{Metrics: prodReg})
	if err != nil {
		t.Fatal(err)
	}
	anl, err := g.AddSite("anl.gov", testbed.SiteOptions{Metrics: consReg})
	if err != nil {
		t.Fatal(err)
	}
	if err := anl.SubscribeTo(cern.Addr()); err != nil {
		t.Fatal(err)
	}

	const size = 200_000
	if _, err := g.WriteSiteFile("cern.ch", "obs.db", testbed.MakeData(size, 13)); err != nil {
		t.Fatal(err)
	}
	pf, err := cern.Publish("obs.db", core.PublishOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// The notification queues the file; draining the queue replicates it
	// and returns the gauge to zero.
	waitPending := time.Now().Add(5 * time.Second)
	for len(anl.Pending()) == 0 && time.Now().Before(waitPending) {
		time.Sleep(time.Millisecond)
	}
	if n, err := anl.ProcessPending(); err != nil || n != 1 {
		t.Fatalf("ProcessPending = %d, %v", n, err)
	}
	if !anl.HasFile(pf.LFN) {
		t.Fatal("file missing after ProcessPending")
	}

	prod := prodReg.Text()
	for series, want := range map[string]float64{
		core.SiteMetricsPrefix + `_publishes_total{outcome="ok"}`:     1,
		core.SiteMetricsPrefix + `_publish_seconds_count`:             1,
		core.SiteMetricsPrefix + `_notifications_total{outcome="ok"}`: 1,
		core.SiteMetricsPrefix + `_subscribers`:                       1,
		`gdmp_gridftp_server_bytes_total{direction="sent"}`:           size,
	} {
		if got := metricValue(prod, series); got != want {
			t.Errorf("producer %s = %v, want %v", series, got, want)
		}
	}
	cons := consReg.Text()
	for series, want := range map[string]float64{
		core.SiteMetricsPrefix + `_replications_total{outcome="ok"}`:        1,
		core.SiteMetricsPrefix + `_notifications_received_total`:            1,
		core.SiteMetricsPrefix + `_pending_queue_depth`:                     0,
		`gdmp_gridftp_client_bytes_total{direction="get"}`:                  size,
		`gdmp_gridftp_client_transfers_total{direction="get",outcome="ok"}`: 1,
	} {
		if got := metricValue(cons, series); got != want {
			t.Errorf("consumer %s = %v, want %v", series, got, want)
		}
	}

	// The same dump is served remotely (what `gdmp stats` renders).
	remote, err := anl.RemoteMetrics(cern.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if got := metricValue(remote, core.SiteMetricsPrefix+`_publishes_total{outcome="ok"}`); got != 1 {
		t.Errorf("remote dump publishes_total = %v, want 1", got)
	}
	// The Request Manager's own instrumentation counted the scrape.
	if got := metricValue(prodReg.Text(),
		fmt.Sprintf(`gdmp_rpc_server_requests_total{method="%s",status="ok"}`, core.MethodMetrics)); got < 1 {
		t.Errorf("rpc requests_total{gdmp.metrics,ok} = %v, want >= 1", got)
	}
}
