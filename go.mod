module gdmp

go 1.22
