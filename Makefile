# GDMP build and verification entry points.
#
# `make check` is the tier-1+ gate: everything tier-1 runs
# (build + tests), plus vet, gofmt, and the full suite under the race
# detector. CI and pre-merge runs should use it.

GO ?= go

.PHONY: all build test check vet fmt race bench bench-pull bench-catalog chaos crash scrub parity cache catalog partition overload

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

check: fmt vet build race

bench: bench-pull
	$(GO) test -bench=. -benchmem ./...

# Pull-scheduler benchmark: drains a 16-file pending queue over a
# latency-shaped WAN link, sequentially and with the 4-worker pool, and
# records both timings plus the speedup in BENCH_pull.json. Fails if the
# pool is under 3x faster than sequential.
BENCH_PULL_OUT ?= BENCH_pull.json
bench-pull:
	BENCH_PULL_OUT=$(BENCH_PULL_OUT) $(GO) test -run TestPullSchedulerBenchmark -v .

# Catalog RLS benchmark: loads 1M LFNs into the sharded LRC, sustains a
# lookup storm (>=10k/sec floor), compares lookup throughput under
# journaled write load against the single-mutex baseline (sharded must
# win), and asserts the bloom digest's false-positive rate stays under
# its bound. Results land in $(BENCH_CATALOG_OUT).
BENCH_CATALOG_OUT ?= BENCH_catalog.json
bench-catalog:
	BENCH_CATALOG_OUT=$(BENCH_CATALOG_OUT) $(GO) test -run TestCatalogBenchmark -v .

# RLS suite: the sharded-catalog + bloom-digest Replica Location Service
# tests — shard rebalance and concurrency properties, RLI soft-state
# semantics, journaled-store recovery, and the grid-level read-your-writes,
# RLI-fallback, false-positive, and crash-convergence scenarios. Race
# detector on. The seed is logged by every property test; replay a run
# with `make catalog RLS_SEED=7`.
RLS_SEED ?= 20260809
catalog:
	@echo "rls seed: $(RLS_SEED)"
	RLS_SEED=$(RLS_SEED) $(GO) test -race -v \
		-run 'TestRLS|TestRLI|TestShard|TestStore|TestBloom|TestReadEntry|TestConcurrentShardedMutation' \
		./internal/replica .

# Fault-injection suite: scripted fault schedules through internal/faults,
# race detector on. The seed is logged by every test; override it to
# replay a run, e.g. `make chaos CHAOS_SEED=7`.
CHAOS_SEED ?= 20260805
chaos:
	@echo "chaos seed: $(CHAOS_SEED)"
	CHAOS_SEED=$(CHAOS_SEED) $(GO) test -race -v \
		-run 'TestChaos|TestRecoverWithMidTransferFailure|TestProcessPendingRequeuesRemainder' .

# Crash/restart chaos suite: sites die SIGKILL-style at randomized points
# (journal severed, no graceful teardown) and restart on the same state
# and data directories; recovery must lose no notification, requeue every
# unfinished pull, resume partial downloads, and quarantine anything
# corrupt. The seed is logged by every test; replay a run with
# `make crash CRASH_SEED=7`. State directories of failed tests survive
# under $(CRASH_ARTIFACT_DIR) for inspection.
CRASH_SEED ?= 20260805
CRASH_ARTIFACT_DIR ?= crash-artifacts
crash:
	@echo "crash seed: $(CRASH_SEED)"
	CRASH_SEED=$(CRASH_SEED) CRASH_ARTIFACT_DIR=$(CRASH_ARTIFACT_DIR) \
		$(GO) test -race -v -run 'TestCrashRestart' .

# Partition chaos suite: a seeded asymmetric partition wedges the
# primary replica source mid-stream; every pull must still complete from
# the secondary via a hedged transfer that resumes the CRC-verified
# .part prefix cross-source, the dead peer's circuit breaker must shed
# all load until its reopen probe, and breaker transitions, hedge
# outcomes, and wasted bytes are asserted exactly. Race detector on. The
# seed is logged by every test; replay a run with
# `make partition PARTITION_SEED=7`.
PARTITION_SEED ?= 20260809
partition:
	@echo "partition seed: $(PARTITION_SEED)"
	PARTITION_SEED=$(PARTITION_SEED) $(GO) test -race -v \
		-run 'TestPartition' .

# Overload chaos suite: a ~10x offered load plus a synchronized retry
# storm against the admission controller — goodput and p99 admission
# wait must hold their floors, zero requests may execute past their
# wire-propagated deadline, brownout must shed background work and lift
# after the storm, draining must refuse queued work while in-flight work
# finishes, an injected ENOSPC must release its pool reservation without
# orphans or quarantine, and mixed-version wire interop is proven both
# directions. Race detector on. The seed is logged by every test; replay
# a run with `make overload OVERLOAD_SEED=7`.
OVERLOAD_SEED ?= 20260809
overload:
	@echo "overload seed: $(OVERLOAD_SEED)"
	OVERLOAD_SEED=$(OVERLOAD_SEED) $(GO) test -race -v \
		-run 'TestOverload' .

# Self-healing suite: bit-rot injection, anti-entropy convergence, and
# quarantine retention, race detector on. The seed is logged by every
# test; replay a run with `make scrub SCRUB_SEED=7`.
SCRUB_SEED ?= 20260805
scrub:
	@echo "scrub seed: $(SCRUB_SEED)"
	SCRUB_SEED=$(SCRUB_SEED) $(GO) test -race -v \
		-run 'TestSelfHeal|TestAntiEntropyConvergence|TestQuarantineRetention' .

# Erasure-coded repair suite: block-aligned corruption bursts against
# parity sidecars — within-budget damage rebuilt locally with zero WAN
# bytes, beyond-budget damage falling back to quarantine + re-pull, crash
# recovery around sidecar writes, and sidecar retention. Race detector
# on. The seed is logged by every test; replay a run with
# `make parity PARITY_SEED=7`. State directories of failed crash tests
# survive under $(CRASH_ARTIFACT_DIR) for inspection.
PARITY_SEED ?= 20260805
parity:
	@echo "parity seed: $(PARITY_SEED)"
	PARITY_SEED=$(PARITY_SEED) CRASH_ARTIFACT_DIR=$(CRASH_ARTIFACT_DIR) \
		$(GO) test -race -v -run 'TestParity' .

# Disk-pool cache soak: a seeded Zipf trace drives two consumer sites
# through a capacity-bounded pool, comparing LRU vs FIFO at two skews and
# asserting hit-rate floors, capacity bounds, and eviction/RC-withdrawal
# consistency. Results land in $(BENCH_CACHE_OUT). The seed is logged;
# replay a run with `make cache CACHE_SEED=7`.
CACHE_SEED ?= 20260805
BENCH_CACHE_OUT ?= BENCH_cache.json
cache:
	@echo "cache seed: $(CACHE_SEED)"
	CACHE_SEED=$(CACHE_SEED) BENCH_CACHE_OUT=$(BENCH_CACHE_OUT) \
		$(GO) test -race -v -run 'TestCacheSoak|TestCachePrefetch' .
