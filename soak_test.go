// Soak test: a five-site grid under concurrent production and replication
// load, validating that the full stack (catalog, notifications, transfers,
// staging, status accounting) stays consistent under contention.
package gdmp_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"gdmp/internal/core"
	"gdmp/internal/testbed"
)

func TestProductionSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	g, err := testbed.NewGrid(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	// One producer with an MSS, four auto-replicating consumers.
	producer, err := g.AddSite("cern.ch", testbed.SiteOptions{
		WithMSS:     true,
		MSSCapacity: 1 << 30,
		Parallelism: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	consumers := make([]*core.Site, 4)
	for i := range consumers {
		consumers[i], err = g.AddSite(fmt.Sprintf("site%d.org", i), testbed.SiteOptions{
			AutoReplicate: true,
			Parallelism:   2,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := consumers[i].SubscribeTo(producer.Addr()); err != nil {
			t.Fatal(err)
		}
	}

	// Production: several goroutines publish files concurrently, as a
	// detector farm's parallel writers would.
	const (
		writers       = 4
		filesPerWrite = 6
		fileSize      = 100_000
	)
	var wg sync.WaitGroup
	lfns := make(chan string, writers*filesPerWrite)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < filesPerWrite; i++ {
				rel := fmt.Sprintf("run%d/file%02d.db", w, i)
				data := testbed.MakeData(fileSize, int64(w*100+i))
				if _, err := g.WriteSiteFile("cern.ch", rel, data); err != nil {
					t.Errorf("write: %v", err)
					return
				}
				pf, err := producer.Publish(rel, core.PublishOptions{Collection: "soak"})
				if err != nil {
					t.Errorf("publish %s: %v", rel, err)
					return
				}
				lfns <- pf.LFN
			}
		}(w)
	}
	wg.Wait()
	close(lfns)
	var all []string
	for lfn := range lfns {
		all = append(all, lfn)
	}
	if len(all) != writers*filesPerWrite {
		t.Fatalf("published %d files", len(all))
	}

	// Every consumer converges on the full set.
	for _, c := range consumers {
		for _, lfn := range all {
			if err := c.WaitForFile(lfn, 60*time.Second); err != nil {
				t.Fatalf("%s: %v", c.Name(), err)
			}
		}
	}

	// Catalog invariants: every file has 5 replicas; the collection holds
	// everything; no consumer recorded a failed transfer. Local visibility
	// (WaitForFile) precedes the replica-catalog registration in
	// replicate(), so poll the count briefly.
	for _, lfn := range all {
		var locs []string
		for deadline := time.Now().Add(10 * time.Second); ; {
			locs, err = g.Catalog.Locations(lfn)
			if err != nil {
				t.Fatal(err)
			}
			if len(locs) == 5 || time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		if len(locs) != 5 {
			t.Fatalf("%s has %d replicas", lfn, len(locs))
		}
	}
	members, err := g.Catalog.ListCollection("soak")
	if err != nil || len(members) != len(all) {
		t.Fatalf("collection has %d members, %v", len(members), err)
	}
	for _, c := range consumers {
		st := c.Status()
		if st.TransfersFailed != 0 {
			t.Fatalf("%s: %d failed transfers", c.Name(), st.TransfersFailed)
		}
		if st.TransfersOK != len(all) {
			t.Fatalf("%s: %d ok transfers, want %d", c.Name(), st.TransfersOK, len(all))
		}
	}

	// Spot-check content integrity on a few replicas.
	want := testbed.MakeData(fileSize, 0*100+0)
	for _, c := range consumers[:2] {
		got, err := os.ReadFile(filepath.Join(c.DataDir(), "run0", "file00.db"))
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("%s: content mismatch: %v", c.Name(), err)
		}
	}
}
