// Quickstart: the smallest complete GDMP deployment — one producer site,
// one consumer site, a central replica catalog, and one file replicated
// through the publish/subscribe cycle of Section 4.1.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"gdmp/internal/core"
	"gdmp/internal/testbed"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "gdmp-quickstart-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// A Grid: certificate authority, trust roots, ACL, and the central
	// replica catalog server.
	fmt.Println("== bootstrapping the grid (CA + replica catalog) ==")
	grid, err := testbed.NewGrid(dir)
	if err != nil {
		return err
	}
	defer grid.Close()

	// Two sites: CERN produces data, ANL consumes it automatically.
	cern, err := grid.AddSite("cern.ch", testbed.SiteOptions{Parallelism: 4})
	if err != nil {
		return err
	}
	anl, err := grid.AddSite("anl.gov", testbed.SiteOptions{
		AutoReplicate: true,
		Parallelism:   4,
	})
	if err != nil {
		return err
	}
	fmt.Printf("site %s: control %s, gridftp %s\n", cern.Name(), cern.Addr(), cern.DataAddr())
	fmt.Printf("site %s: control %s, gridftp %s\n", anl.Name(), anl.Addr(), anl.DataAddr())

	// The consumer subscribes to the producer (service 1 of Section 4.1).
	if err := anl.SubscribeTo(cern.Addr()); err != nil {
		return err
	}
	fmt.Printf("\n%s subscribed to %s\n", anl.Name(), cern.Name())

	// The detector writes a file at CERN; GDMP publishes it (service 2):
	// catalog registration + notification of all subscribers.
	data := testbed.MakeData(4*1024*1024, 42)
	if _, err := grid.WriteSiteFile("cern.ch", "runs/run-2001-07.db", data); err != nil {
		return err
	}
	pf, err := cern.Publish("runs/run-2001-07.db", core.PublishOptions{
		Collection: "summer-2001-runs",
	})
	if err != nil {
		return err
	}
	fmt.Printf("published %s (%d bytes, crc %s)\n", pf.LFN, pf.Size, pf.CRC)

	// AutoReplicate pulls the file at ANL: stage, transfer with CRC
	// verification, catalog insertion (services 4 and the pipeline of
	// Section 4.1).
	fmt.Println("\nwaiting for automatic replication at anl.gov ...")
	start := time.Now()
	if err := anl.WaitForFile(pf.LFN, 30*time.Second); err != nil {
		return err
	}
	fmt.Printf("replicated in %v\n", time.Since(start).Round(time.Millisecond))

	// Both replicas are now visible to the whole Grid.
	locs, err := grid.Catalog.Locations(pf.LFN)
	if err != nil {
		return err
	}
	fmt.Println("\nreplica catalog locations:")
	for _, l := range locs {
		fmt.Println("  ", l)
	}

	// The consumer's local catalog (service 3: catalog exchange).
	remote, err := cern.RemoteCatalog(anl.Addr())
	if err != nil {
		return err
	}
	fmt.Printf("\n%s's file catalog as seen by %s:\n", anl.Name(), cern.Name())
	for _, fi := range remote {
		fmt.Printf("   %s  (%d bytes, %s, crc %s)\n", fi.LFN, fi.Size, fi.State, fi.CRC32)
	}
	return nil
}
