// hepanalysis walks the physics-analysis scenario of Section 5: a dataset
// of events with objects of growing size lives at CERN; a physicist's
// analysis funnel repeatedly narrows the event set; the later steps need a
// sparse selection of large objects at a remote CPU farm, where file
// replication would ship almost the whole dataset and object replication
// ships only what is needed.
//
//	go run ./examples/hepanalysis
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"gdmp/internal/objectstore"
	"gdmp/internal/objrep"
	"gdmp/internal/testbed"
	"gdmp/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "gdmp-hep-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	grid, err := testbed.NewGrid(dir)
	if err != nil {
		return err
	}
	defer grid.Close()
	objrep.AllowServiceUseAll(grid.ACL)

	cern, err := grid.AddSite("cern.ch", testbed.SiteOptions{WithFederation: true})
	if err != nil {
		return err
	}
	farm, err := grid.AddSite("farm.anl.gov", testbed.SiteOptions{WithFederation: true})
	if err != nil {
		return err
	}

	// The experiment's dataset: 400 events, four object types per event
	// (a scaled version of the paper's 100 B .. 10 MB hierarchy),
	// clustered by type as a persistency layer would.
	const events = 400
	fmt.Println("== generating the experiment dataset at cern.ch ==")
	ds, err := workload.Generate(workload.Config{
		Events:         events,
		Types:          workload.StandardTypes,
		ObjectsPerFile: 100,
		Placement:      workload.ByType,
		Dir:            filepath.Join(cern.DataDir(), "dataset"),
		Seed:           1,
		LinkTypes:      true,
	})
	if err != nil {
		return err
	}
	for _, fm := range ds.Files {
		if _, err := cern.Federation().Attach(fm.Path); err != nil {
			return err
		}
	}
	st, _ := cern.Federation().Stats()
	fmt.Printf("dataset: %d files, %d objects, %.1f MB\n",
		st.Databases, st.Objects, float64(st.Bytes)/1e6)
	if err := objrep.EnableService(cern); err != nil {
		return err
	}

	// The analysis funnel (Section 5.1): each step keeps ~10% of the
	// events and consults the next-larger object type.
	fmt.Println("\n== analysis funnel ==")
	for _, step := range workload.Funnel(events, workload.StandardTypes, 4) {
		fmt.Printf("  step: %6d events, reading %q objects\n", step.Events, step.ObjectType)
	}

	// A middle step: the physicist isolated 40 events and now needs their
	// "esd" objects on the farm. Compare what each strategy would move.
	selection := workload.SelectEvents(events, 40, 7)
	oids := ds.ObjectsFor(selection, "esd")
	filesHit, fileBytes := ds.FilesTouched(oids)
	var objBytes int64
	for range oids {
		objBytes += 10_000 // esd size in StandardTypes
	}
	fmt.Printf("\n== sparse selection: %d of %d events, type esd ==\n", len(selection), events)
	fmt.Printf("file replication would move %d whole files = %.2f MB\n", filesHit, float64(fileBytes)/1e6)
	fmt.Printf("object replication moves the %d objects   = %.2f MB  (%.1fx less)\n",
		len(oids), float64(objBytes)/1e6, float64(fileBytes)/float64(objBytes))

	// At paper scale the gap is catastrophic for file replication:
	m := workload.SparseModel{
		Events: 1_000_000_000, Selected: 1_000_000,
		ObjectsPerFile: 1000, ObjectSize: 10_000,
	}
	fmt.Printf("\nat paper scale (10^6 of 10^9 events, 10 KB objects):\n")
	fmt.Printf("  object replication: %.0f GB;  file replication: %.0f GB (%.0fx)\n",
		m.ObjectBytes()/1e9, m.FileBytes()/1e9, m.Overhead())
	fmt.Printf("  P(any file >50%% selected) = %.1e  — 'extremely low'\n", m.ProbMajoritySelected())

	// Run the actual object replication cycle: copier at the source,
	// pipelined wide-area transfer, attach at the destination, delete the
	// extraction files at the source, update the global object index.
	fmt.Println("\n== object replication cycle (pipelined) ==")
	index := objrep.NewIndex()
	r := &objrep.Replicator{
		Dest:           farm,
		SourceCtl:      cern.Addr(),
		SourceName:     cern.Name(),
		BatchSize:      10,
		Pipelined:      true,
		DeleteAtSource: true,
		Index:          index,
	}
	stats, err := r.Replicate(oids)
	if err != nil {
		return err
	}
	fmt.Printf("moved %d objects in %d batches: %.2f MB in %v (copier %v, transfer %v)\n",
		stats.Objects, stats.Batches, float64(stats.BytesMoved)/1e6,
		stats.Elapsed.Round(1e6), stats.ExtractTime.Round(1e6), stats.TransferTime.Round(1e6))

	// The farm's federation can now serve the analysis job locally.
	read := 0
	var localBytes int64
	if err := farm.Federation().Scan(func(m objectstore.Meta) bool {
		if m.Type == "esd" {
			read++
			localBytes += m.Size
		}
		return true
	}); err != nil {
		return err
	}
	fmt.Printf("farm federation now holds %d esd objects (%.2f MB) — analysis runs locally\n",
		read, float64(localBytes)/1e6)

	// The global index is itself a file, replicated with file machinery.
	pf, err := index.PublishTo(cern, "index/global.idx", "lfn://cern.ch/index/global.idx")
	if err != nil {
		return err
	}
	fetched, err := objrep.FetchFrom(farm, pf.LFN)
	if err != nil {
		return err
	}
	fmt.Printf("global object index published and replicated: %d entries visible at the farm\n",
		fetched.Len())

	// Finally, the storage-level optimization the paper's reclustering
	// lineage [Holt98] suggests: rewriting the farm's files clustered by
	// type makes future type-wise selections touch fewer files.
	fmt.Println("\n== reclustering the farm's replica by type ==")
	res, err := objrep.Recluster(farm.Federation(),
		filepath.Join(farm.DataDir(), "reclustered"), objrep.ClusterByType, 20, 50_000)
	if err != nil {
		return err
	}
	fmt.Printf("rewrote %d objects (%.2f MB) into %d type-clustered files\n",
		res.Objects, float64(res.Bytes)/1e6, len(res.Files))
	return nil
}
