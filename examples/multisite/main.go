// multisite runs the three-site Data Grid of the paper's Figure 3, with the
// Mass Storage System environment of Section 4.4 behind the producer site:
// fan-out replication to subscribers, staging of a tape-resident file on
// demand, and failure recovery of a site that missed all notifications.
//
//	go run ./examples/multisite
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"gdmp/internal/core"
	"gdmp/internal/testbed"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	dir, err := os.MkdirTemp("", "gdmp-multisite-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	grid, err := testbed.NewGrid(dir)
	if err != nil {
		return err
	}
	defer grid.Close()

	// CERN produces data and runs the MSS (disk pool backed by tape).
	cern, err := grid.AddSite("cern.ch", testbed.SiteOptions{
		WithMSS:      true,
		MSSCapacity:  64 << 20,
		MountLatency: 30 * time.Millisecond, // scaled-down tape mount
		TapeRateMBps: 100,
	})
	if err != nil {
		return err
	}
	// Two regional centers consume automatically.
	caltech, err := grid.AddSite("caltech.edu", testbed.SiteOptions{AutoReplicate: true})
	if err != nil {
		return err
	}
	slac, err := grid.AddSite("slac.stanford.edu", testbed.SiteOptions{AutoReplicate: true})
	if err != nil {
		return err
	}
	// Section 4.4 first, while cern.ch is the only replica holder: publish
	// a file, archive it to tape, drop the disk-pool copy, and watch a
	// remote request trigger an explicit stage before the transfer.
	fmt.Println("\n== mass storage: archive, evict, stage on demand ==")
	if _, err := grid.WriteSiteFile("cern.ch", "runs/run-000.db", testbed.MakeData(1<<20, 99)); err != nil {
		return err
	}
	cold, err := cern.Publish("runs/run-000.db", core.PublishOptions{Collection: "production-2001"})
	if err != nil {
		return err
	}
	if err := cern.ArchiveLocal(cold.LFN); err != nil {
		return err
	}
	poolCopy := filepath.Join(cern.DataDir(), "runs", "run-000.db")
	if err := os.Remove(poolCopy); err != nil {
		return err
	}
	fmt.Println("run-000.db archived to tape, disk-pool copy dropped")

	late, err := grid.AddSite("lyon.fr", testbed.SiteOptions{})
	if err != nil {
		return err
	}
	start := time.Now()
	if err := late.Get(cold.LFN); err != nil {
		return err
	}
	fmt.Printf("lyon.fr fetched run-000.db (stage + transfer) in %v\n",
		time.Since(start).Round(time.Millisecond))
	if _, err := os.Stat(poolCopy); err != nil {
		return fmt.Errorf("stage did not restore the pool copy")
	}
	fmt.Println("the stage request restored cern.ch's disk-pool copy as a side effect")

	for _, s := range []*core.Site{caltech, slac} {
		if err := s.SubscribeTo(cern.Addr()); err != nil {
			return err
		}
	}
	fmt.Printf("\nproducer %s has subscribers: %v\n", cern.Name(), cern.Subscribers())

	// Production: three files published into a collection, fanned out to
	// both regional centers.
	fmt.Println("\n== production run: publish 3 files ==")
	var lfns []string
	for i := 1; i <= 3; i++ {
		rel := fmt.Sprintf("runs/run-%03d.db", i)
		if _, err := grid.WriteSiteFile("cern.ch", rel, testbed.MakeData(1<<20, int64(i))); err != nil {
			return err
		}
		pf, err := cern.Publish(rel, core.PublishOptions{Collection: "production-2001"})
		if err != nil {
			return err
		}
		lfns = append(lfns, pf.LFN)
		fmt.Printf("  published %s\n", pf.LFN)
	}
	for _, lfn := range lfns {
		if err := caltech.WaitForFile(lfn, 30*time.Second); err != nil {
			return err
		}
		if err := slac.WaitForFile(lfn, 30*time.Second); err != nil {
			return err
		}
	}
	fmt.Println("all files replicated at caltech.edu and slac.stanford.edu")
	members, _ := grid.Catalog.ListCollection("production-2001")
	fmt.Printf("collection production-2001 holds %d files\n", len(members))

	// Failure recovery: lyon.fr never subscribed, so it missed the
	// production notifications; it reconciles against the producer's
	// catalog.
	fmt.Println("\n== failure recovery via the remote catalog ==")
	n, err := late.Recover(cern.Addr())
	if err != nil {
		return err
	}
	fmt.Printf("lyon.fr recovered %d additional files\n", n)

	// The whole Grid's view: four replicas of each file.
	fmt.Println("\nreplica locations of run-002.db:")
	locs, err := grid.Catalog.Locations(lfns[1])
	if err != nil {
		return err
	}
	for _, l := range locs {
		fmt.Println("  ", l)
	}

	// A catalog query across everything, as an analysis tool would issue.
	big, err := cern.Query("(&(site=cern.ch)(size>=1000000))")
	if err != nil {
		return err
	}
	fmt.Printf("\ncatalog query (&(site=cern.ch)(size>=1000000)) -> %d files\n", len(big))
	return nil
}
