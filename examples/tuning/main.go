// tuning reproduces the Section 6 performance study in miniature: first the
// figure-grade TCP model (Figures 5 and 6), then a live demonstration of
// the same tuning effects over real sockets shaped to WAN conditions.
//
//	go run ./examples/tuning
package main

import (
	"fmt"
	"log"
	"net"
	"os"
	"path/filepath"
	"time"

	"gdmp/internal/gridftp"
	"gdmp/internal/gsi"
	"gdmp/internal/netsim"
	"gdmp/internal/wan"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Part 1: the calibrated TCP model over the paper's CERN-ANL path.
	fmt.Println("== Figure 5 (model): 100 MB file, untuned 64 KB buffers ==")
	cfg := netsim.CERNtoANL()
	fmt.Printf("%-8s %10s\n", "streams", "Mbps")
	for s := 1; s <= 10; s++ {
		m, err := netsim.MeanThroughputMbps(cfg, netsim.Transfer{
			FileBytes: 100 * netsim.MB, Streams: s,
			BufferBytes: netsim.UntunedBufferBytes,
		}, 8)
		if err != nil {
			return err
		}
		fmt.Printf("%-8d %10.2f\n", s, m)
	}
	fmt.Println("\n== Figure 6 (model): the same with 1 MB tuned buffers ==")
	fmt.Printf("%-8s %10s\n", "streams", "Mbps")
	for s := 1; s <= 10; s++ {
		m, err := netsim.MeanThroughputMbps(cfg, netsim.Transfer{
			FileBytes: 100 * netsim.MB, Streams: s,
			BufferBytes: netsim.TunedBufferBytes,
		}, 8)
		if err != nil {
			return err
		}
		fmt.Printf("%-8d %10.2f\n", s, m)
	}
	fmt.Printf("\noptimal buffer by the [Tier00] formula: RTT x bandwidth = %d KB\n",
		netsim.OptimalBufferBytes(cfg)/1024)

	// Part 2: real GridFTP sockets through an emulated WAN bottleneck.
	fmt.Println("\n== live sockets: parallel streams through a shared 60 Mbps, 30 ms link ==")
	dir, err := os.MkdirTemp("", "gdmp-tuning-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	ca, err := gsi.NewCA("DataGrid", time.Hour)
	if err != nil {
		return err
	}
	roots := []*gsi.Certificate{ca.Certificate()}
	serverCred, err := ca.Issue("gridftpd/demo", time.Hour)
	if err != nil {
		return err
	}
	clientCred, err := ca.Issue("physicist", time.Hour)
	if err != nil {
		return err
	}
	acl := gsi.NewACL()
	acl.AllowAll(gridftp.OpRead, gridftp.OpWrite)

	root := filepath.Join(dir, "data")
	os.MkdirAll(root, 0o755)
	payload := make([]byte, 8<<20)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	if err := os.WriteFile(filepath.Join(root, "sample.db"), payload, 0o644); err != nil {
		return err
	}

	srv, err := gridftp.NewServer(gridftp.ServerConfig{
		Root: root, Cred: serverCred, TrustRoots: roots, ACL: acl,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go srv.Serve(ln)
	defer srv.Close()

	link := wan.NewLink(60, 30*time.Millisecond)
	fmt.Printf("%-10s %12s %12s\n", "streams", "seconds", "Mbps")
	for _, streams := range []int{1, 2, 4, 8} {
		cl, err := gridftp.Dial(ln.Addr().String(), clientCred, roots,
			gridftp.WithParallelism(streams),
			gridftp.WithDialFunc(link.Dialer(nil)))
		if err != nil {
			return err
		}
		out := filepath.Join(dir, fmt.Sprintf("out-%d.db", streams))
		stats, err := cl.GetFile("sample.db", out)
		cl.Close()
		if err != nil {
			return err
		}
		fmt.Printf("%-10d %12.2f %12.2f\n",
			streams, stats.Elapsed.Seconds(), stats.RateMbps())
	}
	fmt.Println("\n(with a shared shaped link, extra streams add little on a clean path;")
	fmt.Println(" the model above shows where parallelism pays: lossy, window-limited WANs)")

	// Automatic negotiation: the client measures the path (NOOP round
	// trips for RTT, a timed partial retrieval for bandwidth) and applies
	// the formula itself — the paper's ping + pipechar + [Tier00] recipe.
	cl, err := gridftp.Dial(ln.Addr().String(), clientCred, roots,
		gridftp.WithDialFunc(link.Dialer(nil)))
	if err != nil {
		return err
	}
	defer cl.Close()
	buf, err := cl.AutoTune("sample.db", 2<<20)
	if err != nil {
		return err
	}
	fmt.Printf("\nauto-negotiated TCP buffer for this path: %d KB (RTT x measured bandwidth)\n", buf/1024)
	return nil
}
