// Pull-scheduler benchmark: ProcessPending over a latency-shaped WAN
// link, sequential (one worker) versus the scheduler's default pool.
// Every pull pays several round trips to the source site (stage RPC,
// GridFTP control dialog, data channels), so with K workers those round
// trips overlap and a 16-file drain finishes close to K times sooner.
//
// The run is gated behind BENCH_PULL_OUT so `go test ./...` stays fast:
//
//	BENCH_PULL_OUT=BENCH_pull.json go test -run TestPullSchedulerBenchmark -v .
//
// `make bench-pull` wraps exactly that; CI runs it as a smoke step and
// uploads the JSON.
package gdmp_test

import (
	"encoding/json"
	"fmt"
	"net"
	"os"
	"testing"
	"time"

	"gdmp/internal/obs"
	"gdmp/internal/testbed"
	"gdmp/internal/wan"
)

const (
	pullBenchFiles    = 16
	pullBenchBytes    = 64 << 10
	pullBenchWorkers  = 4
	pullBenchRateMbps = 200.0
	pullBenchRTT      = 40 * time.Millisecond
)

// pullBenchResult is the BENCH_pull.json document.
type pullBenchResult struct {
	Benchmark string  `json:"benchmark"`
	Files     int     `json:"files"`
	FileBytes int     `json:"file_bytes"`
	RateMbps  float64 `json:"link_rate_mbps"`
	RTTMs     float64 `json:"link_rtt_ms"`
	Runs      []struct {
		Workers int     `json:"workers"`
		Seconds float64 `json:"seconds"`
	} `json:"runs"`
	Speedup float64 `json:"speedup"`
}

func TestPullSchedulerBenchmark(t *testing.T) {
	out := os.Getenv("BENCH_PULL_OUT")
	if out == "" {
		t.Skip("set BENCH_PULL_OUT=<path> to run the pull-scheduler benchmark")
	}

	// One ProcessPending drain of pullBenchFiles notices with a pool of
	// the given size. The WAN latency applies only to the producer link;
	// the replica catalog stays on the fast local path (its client is a
	// single shared connection, so shaping it would serialize the very
	// round trips the pool is meant to overlap).
	run := func(workers int) time.Duration {
		g, err := testbed.NewGrid(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		defer g.Close()
		prod, err := g.AddSite("cern.ch", testbed.SiteOptions{Metrics: obs.NewRegistry()})
		if err != nil {
			t.Fatal(err)
		}
		wanDial := wan.NewLink(pullBenchRateMbps, pullBenchRTT).Dialer(nil)
		catalogAddr := g.CatalogAddr
		dial := func(network, addr string) (net.Conn, error) {
			if addr == catalogAddr {
				return net.Dial(network, addr)
			}
			return wanDial(network, addr)
		}
		cons, err := g.AddSite("anl.gov", testbed.SiteOptions{
			Metrics:     obs.NewRegistry(),
			DialFunc:    dial,
			PullWorkers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := cons.SubscribeTo(prod.Addr()); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < pullBenchFiles; i++ {
			publishData(t, g, prod, fmt.Sprintf("bench/f%02d.db", i),
				testbed.MakeData(pullBenchBytes, int64(100+i)))
		}
		waitUntil(t, 30*time.Second, "all pending notices", func() bool {
			return len(cons.Pending()) == pullBenchFiles
		})
		start := time.Now()
		n, err := cons.ProcessPending()
		elapsed := time.Since(start)
		if err != nil || n != pullBenchFiles {
			t.Fatalf("ProcessPending(workers=%d) = %d, %v", workers, n, err)
		}
		return elapsed
	}

	seq := run(1)
	par := run(pullBenchWorkers)
	speedup := seq.Seconds() / par.Seconds()
	t.Logf("sequential %v, %d workers %v, speedup %.2fx", seq, pullBenchWorkers, par, speedup)

	res := pullBenchResult{
		Benchmark: "pull_scheduler",
		Files:     pullBenchFiles,
		FileBytes: pullBenchBytes,
		RateMbps:  pullBenchRateMbps,
		RTTMs:     float64(pullBenchRTT) / float64(time.Millisecond),
		Speedup:   speedup,
	}
	for _, r := range []struct {
		workers int
		d       time.Duration
	}{{1, seq}, {pullBenchWorkers, par}} {
		res.Runs = append(res.Runs, struct {
			Workers int     `json:"workers"`
			Seconds float64 `json:"seconds"`
		}{r.workers, r.d.Seconds()})
	}
	doc, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(doc, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", out)

	if speedup < 3 {
		t.Errorf("speedup %.2fx < 3x: the worker pool is not overlapping transfer latency", speedup)
	}
}
