// Partition chaos harness: a seeded asymmetric network partition wedges
// the primary replica source mid-stream, and every pull must still
// complete from the secondary — the stall watchdog hedges to it, the
// cross-source resume reuses the CRC-verified .part prefix without
// re-downloading a byte, the primary's circuit breaker opens and sheds
// all load until its decorrelated reopen probe, and the probe (carried by
// live traffic) closes it again. Breaker transitions, hedge outcomes, and
// wasted bytes are all asserted exactly.
//
// The run logs its seed; set PARTITION_SEED to replay one.
package gdmp_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gdmp/internal/core"
	"gdmp/internal/faults"
	"gdmp/internal/health"
	"gdmp/internal/obs"
	"gdmp/internal/testbed"
)

// partitionSeed returns the run's seed (overridable with PARTITION_SEED)
// and logs it so a failure replays exactly. The seed drives the fault
// injector and the breaker's decorrelated reopen jitter.
func partitionSeed(t *testing.T) int64 {
	t.Helper()
	seed := int64(20260809)
	if s := os.Getenv("PARTITION_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("PARTITION_SEED %q: %v", s, err)
		}
		seed = v
	}
	t.Logf("partition seed: %d (set PARTITION_SEED to replay)", seed)
	return seed
}

// TestPartitionHedgedPullsSurvive is the acceptance scenario. Topology:
// two producers holding the same five files, one consumer. Mid-way
// through the consumer's first pull, an asymmetric partition black-holes
// the byte stream from the primary source (dials still succeed, writes
// still flow — only reads stall, the nastiest WAN failure mode). The
// consumer must:
//
//  1. hedge the stalled pull to the secondary and finish it there,
//     resuming the verified .part prefix with zero re-downloaded bytes;
//  2. open the primary's breaker (threshold 1) and route every further
//     pull straight to the secondary with no new dials to the dead peer;
//  3. after the partition heals and the reopen delay passes, send the
//     next pull to the primary as the reopen probe and close the breaker.
func TestPartitionHedgedPullsSurvive(t *testing.T) {
	seed := partitionSeed(t)
	g, err := testbed.NewGrid(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	// Two producers with private registries; both end up holding every
	// file, giving the consumer a primary and a hedge target.
	p1, err := g.AddSite("cern.ch", testbed.SiteOptions{Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := g.AddSite("fnal.gov", testbed.SiteOptions{Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	p1FTP, p2FTP := p1.DataAddr(), p2.DataAddr()
	p1Ctl, p2Ctl := p1.Addr(), p2.Addr()

	const nFiles = 5
	const fileSize = 256 << 10
	var pfs [nFiles]core.PublishedFile
	var payload [nFiles][]byte
	for i := 0; i < nFiles; i++ {
		payload[i] = testbed.MakeData(fileSize, int64(50+i))
		pfs[i] = publishData(t, g, p1, fmt.Sprintf("part/f%d.db", i), payload[i])
		if err := p2.Get(pfs[i].LFN); err != nil {
			t.Fatalf("seed replica %d to secondary: %v", i, err)
		}
	}

	// The consumer's injector: control channels and the secondary run
	// clean; dials to the primary's GridFTP endpoint are tallied (the
	// shed-load proof); and while the partition is up, the first
	// passive-mode data connection black-holes its reads after 160 KiB —
	// enough wire bytes for two complete 64 KiB extended blocks to land
	// in the .part, so the takeover has a verified prefix to resume.
	// Writes are untouched — the partition is asymmetric.
	var partitionOn atomic.Bool
	var mu sync.Mutex
	dataConns, p1Dials := 0, 0
	consReg := obs.NewRegistry()
	consFaults := faults.New(seed, func(c faults.ConnInfo) faults.Plan {
		mu.Lock()
		defer mu.Unlock()
		switch c.Addr {
		case g.CatalogAddr, p1Ctl, p2Ctl, p2FTP:
			return faults.Plan{}
		case p1FTP:
			p1Dials++
			return faults.Plan{}
		}
		// Any other address is a passive-mode data connection.
		if partitionOn.Load() {
			dataConns++
			if dataConns == 1 {
				return faults.Partition(160 << 10)
			}
		}
		return faults.Plan{}
	}, faults.WithMetrics(consReg))

	const reopenBase = 2 * time.Second
	cons, err := g.AddSite("anl.gov", testbed.SiteOptions{
		Metrics:     consReg,
		Faults:      consFaults,
		Retry:       fastRetry(3),
		Parallelism: 1,
		PullWorkers: 1,
		// The catalog reports replica locations in no particular order;
		// pin the selector to the primary so the partition script
		// deterministically wedges cern.ch and hedges to fnal.gov.
		Select: func(_ string, cands []core.PFN) core.PFN {
			for _, c := range cands {
				if c.Addr == p1FTP {
					return c
				}
			}
			return cands[0]
		},
		// One stall opens the breaker; the reopen delay is long enough
		// that the shed-load phase cannot race a probe, and HedgeMin
		// keeps healthy loopback pulls from ever stalling spuriously.
		Health: health.Config{
			FailureThreshold: 1,
			ReopenBase:       reopenBase,
			ReopenMax:        8 * time.Second,
			HedgeMin:         time.Second,
			Seed:             seed,
		},
		// Cold-start stall deadline: the partitioned first pull has no
		// scoreboard history yet, so this is the fuse that fires.
		HedgeDeadline: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	// --- Phase 1: partition the primary mid-stream on the first pull. ---
	partitionOn.Store(true)
	if err := cons.Get(pfs[0].LFN); err != nil {
		t.Fatalf("partitioned pull must complete from the secondary: %v", err)
	}
	breakerOpenedAt := time.Now()

	mu.Lock()
	dialsAfterFirst := p1Dials
	mu.Unlock()
	if dialsAfterFirst != 1 {
		t.Fatalf("primary FTP dials after first pull = %d, want 1", dialsAfterFirst)
	}
	if n := consFaults.Injected(faults.KindPartition); n != 1 {
		t.Fatalf("injected partitions = %d, want 1", n)
	}

	// --- Phase 2: further pulls shed the dead primary entirely. ---
	for i := 1; i < nFiles-1; i++ {
		if err := cons.Get(pfs[i].LFN); err != nil {
			t.Fatalf("pull %d during partition: %v", i, err)
		}
	}
	mu.Lock()
	dialsDuringShed := p1Dials
	mu.Unlock()
	if dialsDuringShed != dialsAfterFirst {
		t.Fatalf("open breaker leaked %d new dials to the dead primary",
			dialsDuringShed-dialsAfterFirst)
	}

	// Mid-run accounting: one hedge started, won by the hedge leg, with
	// zero wasted bytes — the takeover resumed every CRC-verified byte
	// the stalled primary had landed.
	text := consReg.Text()
	for series, want := range map[string]float64{
		`gdmp_xfer_hedge_started_total`:                                        1,
		`gdmp_xfer_hedge_wins_total{winner="hedge"}`:                           1,
		`gdmp_xfer_hedge_wasted_bytes_total`:                                   0,
		`gdmp_gridftp_client_resumes_total`:                                    1,
		`gdmp_gridftp_client_resume_rejected_total`:                            0,
		`gdmp_faults_injected_total{kind="partition"}`:                         1,
		fmt.Sprintf(`gdmp_health_transitions_total{peer=%q,to="open"}`, p1FTP): 1,
		fmt.Sprintf(`gdmp_health_stalls_total{peer=%q}`, p1FTP):                1,
		// -1 = series absent: no reopen probe has run yet, so the
		// half-open child of the transitions vector does not exist.
		fmt.Sprintf(`gdmp_health_transitions_total{peer=%q,to="half_open"}`, p1FTP): -1,
	} {
		if got := metricValue(text, series); got != want {
			t.Errorf("%s = %v, want %v", series, got, want)
		}
	}
	if got := metricValue(text, `gdmp_gridftp_client_resumed_bytes_total`); got <= 0 {
		t.Errorf("resumed bytes = %v, want > 0 (the prefix must be reused)", got)
	}

	// --- Phase 3: heal, wait out the reopen delay, probe, close. ---
	partitionOn.Store(false)
	// The first open uses exactly ReopenBase (decorrelated jitter starts
	// on the second open), so the probe window is deterministic.
	time.Sleep(time.Until(breakerOpenedAt.Add(reopenBase + 300*time.Millisecond)))
	if err := cons.Get(pfs[nFiles-1].LFN); err != nil {
		t.Fatalf("probe pull after heal: %v", err)
	}
	mu.Lock()
	dialsAfterProbe := p1Dials
	mu.Unlock()
	// A successful pull dials its source twice: once for the transfer and
	// once for the end-to-end checksum verify of the landed file. The
	// phase-1 stalled leg made exactly one (its verify never ran).
	if dialsAfterProbe != dialsAfterFirst+2 {
		t.Fatalf("probe phase dialed primary %d times, want exactly 2 (transfer + verify)",
			dialsAfterProbe-dialsAfterFirst)
	}

	// Every file landed intact.
	for i := 0; i < nFiles; i++ {
		got, err := os.ReadFile(filepath.Join(cons.DataDir(), "part", fmt.Sprintf("f%d.db", i)))
		if err != nil || !bytes.Equal(got, payload[i]) {
			t.Fatalf("file %d content mismatch after partition: %v", i, err)
		}
	}

	// Final exact accounting: one full open → half-open → closed breaker
	// cycle for the primary, not a single transition for the secondary,
	// and one successful probe.
	text = consReg.Text()
	for series, want := range map[string]float64{
		fmt.Sprintf(`gdmp_health_transitions_total{peer=%q,to="open"}`, p1FTP):      1,
		fmt.Sprintf(`gdmp_health_transitions_total{peer=%q,to="half_open"}`, p1FTP): 1,
		fmt.Sprintf(`gdmp_health_transitions_total{peer=%q,to="closed"}`, p1FTP):    1,
		fmt.Sprintf(`gdmp_health_probes_total{peer=%q,outcome="ok"}`, p1FTP):        1,
		fmt.Sprintf(`gdmp_health_state{peer=%q}`, p1FTP):                            0,
		// -1 = series absent: the secondary's breaker never transitioned.
		fmt.Sprintf(`gdmp_health_transitions_total{peer=%q,to="open"}`, p2FTP): -1,
		`gdmp_xfer_hedge_started_total`:                                        1,
		`gdmp_xfer_hedge_wins_total{winner="hedge"}`:                           1,
		`gdmp_xfer_hedge_wasted_bytes_total`:                                   0,
		`gdmp_site_replications_total{outcome="ok"}`:                           nFiles,
		`gdmp_retry_ops_total{op="core.replicate",outcome="ok"}`:               nFiles,
	} {
		if got := metricValue(text, series); got != want {
			t.Errorf("%s = %v, want %v", series, got, want)
		}
	}

	// The scoreboard crosses the status wire: the healed primary shows a
	// closed breaker, and the secondary shows the bandwidth EWMA that
	// made it the ranked hedge target.
	var sawP1, sawP2 bool
	for _, ph := range cons.Status().HealthPeers {
		switch ph.Peer {
		case p1FTP:
			sawP1 = true
			if ph.Breaker != "closed" || ph.ConsecFails != 0 || ph.LastTransition.IsZero() {
				t.Errorf("primary status row = %+v, want closed/0 fails/transition stamped", ph)
			}
		case p2FTP:
			sawP2 = true
			if ph.Breaker != "closed" || ph.BandwidthKbps <= 0 {
				t.Errorf("secondary status row = %+v, want closed with bandwidth", ph)
			}
		}
	}
	if !sawP1 || !sawP2 {
		t.Errorf("status health block missing peers: p1=%v p2=%v", sawP1, sawP2)
	}
}
