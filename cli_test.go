// End-to-end integration test of the command-line tools: a real
// multi-process deployment with gridca-minted credentials, a replicad
// catalog daemon, two gdmpd site daemons, and transfers driven by the gdmp
// and gurlcopy clients — the operational shape of the paper's testbed.
package gdmp_test

import (
	"bytes"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"gdmp/internal/objectstore"
)

var (
	toolsOnce sync.Once
	toolsDir  string
	toolsErr  error
)

// buildTools compiles every cmd binary once per test run into a shared
// temp dir (removed by the OS; binaries are only needed while testing).
func buildTools(t *testing.T) string {
	t.Helper()
	toolsOnce.Do(func() {
		dir, err := os.MkdirTemp("", "gdmp-tools-*")
		if err != nil {
			toolsErr = err
			return
		}
		cmd := exec.Command("go", "build", "-o", dir+string(os.PathSeparator), "./cmd/...")
		cmd.Env = os.Environ()
		if out, err := cmd.CombinedOutput(); err != nil {
			toolsErr = &buildError{err: err, out: string(out)}
			return
		}
		toolsDir = dir
	})
	if toolsErr != nil {
		t.Fatalf("go build ./cmd/...: %v", toolsErr)
	}
	return toolsDir
}

type buildError struct {
	err error
	out string
}

func (e *buildError) Error() string { return e.err.Error() + "\n" + e.out }

// runTool executes a built binary and returns its combined output.
func runTool(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %s: %v\n%s", filepath.Base(bin), strings.Join(args, " "), err, out)
	}
	return string(out)
}

// startDaemon launches a long-running binary and registers cleanup.
func startDaemon(t *testing.T, bin string, args ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, args...)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	if err := cmd.Start(); err != nil {
		t.Fatalf("start %s: %v", filepath.Base(bin), err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
		if t.Failed() {
			t.Logf("%s output:\n%s", filepath.Base(bin), buf.String())
		}
	})
	return cmd
}

// freePort reserves an ephemeral port and returns "127.0.0.1:port".
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// waitPort blocks until something is listening at addr.
func waitPort(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		c, err := net.DialTimeout("tcp", addr, 200*time.Millisecond)
		if err == nil {
			c.Close()
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("nothing listening at %s", addr)
}

func TestCLIDeployment(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process deployment test skipped in -short mode")
	}
	bin := buildTools(t)
	work := t.TempDir()
	certs := filepath.Join(work, "certs")

	// 1. Trust domain: CA plus credentials for every principal.
	runTool(t, filepath.Join(bin, "gridca"), "init", "-dir", certs, "-org", "DataGrid")
	for _, cn := range []string{"replicad", "gdmp/site1", "gdmp/site2", "alice"} {
		out := filepath.Join(certs, strings.ReplaceAll(cn, "/", "_")+".pem")
		runTool(t, filepath.Join(bin, "gridca"), "issue", "-dir", certs, "-cn", cn, "-out", out)
	}
	caPem := filepath.Join(certs, "ca.pem")

	// gridca show prints the chain.
	show := runTool(t, filepath.Join(bin, "gridca"), "show", "-cred", filepath.Join(certs, "alice.pem"))
	if !strings.Contains(show, "/O=DataGrid/CN=alice") || !strings.Contains(show, "CA root") {
		t.Fatalf("gridca show output:\n%s", show)
	}

	// A proxy can be delegated and inspected.
	proxyPem := filepath.Join(certs, "alice-proxy.pem")
	runTool(t, filepath.Join(bin, "gridca"), "proxy", "-cred", filepath.Join(certs, "alice.pem"), "-out", proxyPem)
	show = runTool(t, filepath.Join(bin, "gridca"), "show", "-cred", proxyPem)
	if !strings.Contains(show, "alice/proxy") {
		t.Fatalf("proxy show output:\n%s", show)
	}

	// 2. The central replica catalog daemon.
	rcAddr := freePort(t)
	snapshot := filepath.Join(work, "catalog.snap")
	startDaemon(t, filepath.Join(bin, "replicad"),
		"-listen", rcAddr,
		"-cred", filepath.Join(certs, "replicad.pem"),
		"-ca", caPem,
		"-snapshot", snapshot)
	waitPort(t, rcAddr)

	// 3. Two GDMP site daemons.
	site1Ctl, site1Data := freePort(t), freePort(t)
	site2Ctl, site2Data := freePort(t), freePort(t)
	site1Pool := filepath.Join(work, "site1-pool")
	site2Pool := filepath.Join(work, "site2-pool")
	os.MkdirAll(site1Pool, 0o755)
	os.MkdirAll(site2Pool, 0o755)
	startDaemon(t, filepath.Join(bin, "gdmpd"),
		"-name", "site1", "-data", site1Pool, "-rc", rcAddr,
		"-cred", filepath.Join(certs, "gdmp_site1.pem"), "-ca", caPem,
		"-listen", site1Ctl, "-ftp-listen", site1Data)
	startDaemon(t, filepath.Join(bin, "gdmpd"),
		"-name", "site2", "-data", site2Pool, "-rc", rcAddr,
		"-cred", filepath.Join(certs, "gdmp_site2.pem"), "-ca", caPem,
		"-listen", site2Ctl, "-ftp-listen", site2Data)
	waitPort(t, site1Ctl)
	waitPort(t, site2Ctl)

	gdmp := filepath.Join(bin, "gdmp")
	aliceArgs := []string{"-cred", proxyPem, "-ca", caPem}

	// 4. The client pings both sites (authenticating with the proxy).
	out := runTool(t, gdmp, append(aliceArgs, "ping", site1Ctl)...)
	if !strings.Contains(out, `site "site1"`) {
		t.Fatalf("ping output: %s", out)
	}
	out = runTool(t, gdmp, append(aliceArgs, "ping", site2Ctl)...)
	if !strings.Contains(out, `site "site2"`) {
		t.Fatalf("ping output: %s", out)
	}

	// 5. Subscribe site2 to site1 via the CLI.
	runTool(t, gdmp, append(aliceArgs, "subscribe", site1Ctl, "site2", site2Ctl)...)

	// 6. Move a file into site1 with gurlcopy (upload), then fetch it back
	// (download) and verify contents.
	gurlcopy := filepath.Join(bin, "gurlcopy")
	payload := bytes.Repeat([]byte("gdmp-cli-payload-"), 40_000) // ~680 KB
	src := filepath.Join(work, "upload.db")
	if err := os.WriteFile(src, payload, 0o644); err != nil {
		t.Fatal(err)
	}
	out = runTool(t, gurlcopy, "-cred", proxyPem, "-ca", caPem, "-p", "3",
		src, "gridftp://"+site1Data+"/runs/upload.db")
	if !strings.Contains(out, "bytes in") {
		t.Fatalf("gurlcopy upload output: %s", out)
	}
	dst := filepath.Join(work, "download.db")
	runTool(t, gurlcopy, "-cred", proxyPem, "-ca", caPem, "-p", "2",
		"gridftp://"+site1Data+"/runs/upload.db", dst)
	got, err := os.ReadFile(dst)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("download mismatch: %v", err)
	}

	// 7. Third-party transfer between the two site servers.
	out = runTool(t, gurlcopy, "-cred", proxyPem, "-ca", caPem, "-p", "2",
		"gridftp://"+site1Data+"/runs/upload.db",
		"gridftp://"+site2Data+"/mirror/upload.db")
	if !strings.Contains(out, "bytes in") {
		t.Fatalf("third-party output: %s", out)
	}
	mirror, err := os.ReadFile(filepath.Join(site2Pool, "mirror", "upload.db"))
	if err != nil || !bytes.Equal(mirror, payload) {
		t.Fatalf("third-party content mismatch: %v", err)
	}

	// 8. gdmp fetch (the Data Mover path) also works.
	fetched := filepath.Join(work, "fetched.db")
	out = runTool(t, gdmp, "-cred", proxyPem, "-ca", caPem, "-p", "2",
		"fetch", "gridftp://"+site1Data+"/runs/upload.db", fetched)
	if !strings.Contains(out, "fetched") {
		t.Fatalf("fetch output: %s", out)
	}
	got, _ = os.ReadFile(fetched)
	if !bytes.Equal(got, payload) {
		t.Fatal("fetch content mismatch")
	}

	// 9. Register the file in the catalog via a small driver (the daemons
	// publish internally; the catalog CLI surface is query/locations).
	// Instead exercise the catalog through gdmp query on the empty
	// namespace — it should succeed with no results.
	out = runTool(t, gdmp, "-cred", proxyPem, "-ca", caPem, "-rc", rcAddr,
		"query", "(name=*)")
	_ = out // empty catalog: no lines, success is enough

	// 10. The site catalog command answers (empty catalogs).
	out = runTool(t, gdmp, append(aliceArgs, "catalog", site1Ctl)...)
	if !strings.Contains(out, "0 files") {
		t.Fatalf("catalog output: %s", out)
	}

	// 11. The status command reports the site's counters.
	out = runTool(t, gdmp, append(aliceArgs, "status", site1Ctl)...)
	if !strings.Contains(out, "site site1") || !strings.Contains(out, "transfers: 0 ok") {
		t.Fatalf("status output: %s", out)
	}

	// 11b. The stats command dumps the daemon's metrics registry; the
	// earlier gurlcopy upload must be visible in the GridFTP server series.
	out = runTool(t, gdmp, append(aliceArgs, "stats", site1Ctl)...)
	for _, series := range []string{
		"# TYPE gdmp_gridftp_server_bytes_total counter",
		`gdmp_gridftp_server_bytes_total{direction="received"}`,
		"gdmp_rpc_server_requests_total",
		"gdmp_site_subscribers 1",
	} {
		if !strings.Contains(out, series) {
			t.Fatalf("stats output missing %q:\n%s", series, out)
		}
	}

	// 12. Operator-driven catalog registration + logical-name fetch: the
	// uploaded file becomes a catalog entry, is discoverable by query and
	// locations, and fetch-lfn resolves and retrieves it.
	lfn := "lfn://site1/runs/upload.db"
	pfn := "gridftp://" + site1Data + "/runs/upload.db"
	runTool(t, gdmp, "-cred", proxyPem, "-ca", caPem, "-rc", rcAddr, "register", lfn, pfn)
	out = runTool(t, gdmp, "-cred", proxyPem, "-ca", caPem, "-rc", rcAddr, "locations", lfn)
	if !strings.Contains(out, pfn) {
		t.Fatalf("locations output: %s", out)
	}
	out = runTool(t, gdmp, "-cred", proxyPem, "-ca", caPem, "-rc", rcAddr,
		"query", "(name=lfn://site1/*)")
	if !strings.Contains(out, lfn) {
		t.Fatalf("query output: %s", out)
	}
	byLFN := filepath.Join(work, "by-lfn.db")
	out = runTool(t, gdmp, "-cred", proxyPem, "-ca", caPem, "-rc", rcAddr, "-p", "2",
		"fetch-lfn", lfn, byLFN)
	if !strings.Contains(out, "fetched "+lfn) {
		t.Fatalf("fetch-lfn output: %s", out)
	}
	got, _ = os.ReadFile(byLFN)
	if !bytes.Equal(got, payload) {
		t.Fatal("fetch-lfn content mismatch")
	}
}

func TestCLIObjcopier(t *testing.T) {
	if testing.Short() {
		t.Skip("binary test skipped in -short mode")
	}
	bin := buildTools(t)
	work := t.TempDir()

	// Build a small object database and a federation catalog.
	dbPath := filepath.Join(work, "db1.odb")
	w, err := objectstore.Create(dbPath, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint32(1); i <= 5; i++ {
		if err := w.Add(&objectstore.Object{
			OID: objectstore.OID{Slot: i}, Type: "esd", Event: uint64(i),
			Data: bytes.Repeat([]byte{byte(i)}, 100),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	fed := objectstore.NewFederation()
	if _, err := fed.Attach(dbPath); err != nil {
		t.Fatal(err)
	}
	fedCat := filepath.Join(work, "federation.cat")
	if err := fed.Save(fedCat); err != nil {
		t.Fatal(err)
	}
	fed.Close()

	out := filepath.Join(work, "extract.odb")
	output := runTool(t, filepath.Join(bin, "objcopier"),
		"-federation", fedCat,
		"-oids", "1:2,1:4",
		"-out", out,
		"-dbid", "2147483649")
	if !strings.Contains(output, "copied 2 objects") {
		t.Fatalf("objcopier output: %s", output)
	}
	db, err := objectstore.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if db.Len() != 2 {
		t.Fatalf("extracted db has %d objects", db.Len())
	}
}

func TestCLIBenchfig(t *testing.T) {
	if testing.Short() {
		t.Skip("binary test skipped in -short mode")
	}
	bin := buildTools(t)
	out := runTool(t, filepath.Join(bin, "benchfig"), "-fig", "conclusions", "-repeats", "3")
	for _, want := range []string{"C1", "C2", "C3", "C4"} {
		if !strings.Contains(out, want) {
			t.Fatalf("benchfig output missing %s:\n%s", want, out)
		}
	}
	out = runTool(t, filepath.Join(bin, "benchfig"), "-fig", "sparse")
	if !strings.Contains(out, "632.3x") {
		t.Fatalf("sparse table missing paper row:\n%s", out)
	}
}
