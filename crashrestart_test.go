// Crash/restart chaos tests: sites are killed abruptly (journal severed,
// no graceful teardown — the in-process equivalent of SIGKILL) at
// randomized points of the publish/notify/pull pipeline and restarted on
// the same state and data directories. Durability contract under test:
//
//   - no published notification is lost — every file reaches every
//     subscriber across any number of consumer or producer crashes;
//   - every unfinished pull is requeued on restart;
//   - no partial or corrupt file survives recovery unquarantined;
//   - an interrupted transfer resumes from its verified partial instead
//     of starting over, visible in gdmp_gridftp_client_resumes_total /
//     _resumed_bytes_total and the gdmp_recovery_* gauges.
//
// Every test logs its seed; set CRASH_SEED to replay a run.
package gdmp_test

import (
	"bytes"
	"fmt"
	"io/fs"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"gdmp/internal/core"
	"gdmp/internal/faults"
	"gdmp/internal/gridftp"
	"gdmp/internal/obs"
	"gdmp/internal/testbed"
)

// crashSeed returns the run's randomization seed (overridable with
// CRASH_SEED) and logs it so a failure replays exactly.
func crashSeed(t *testing.T) int64 {
	t.Helper()
	seed := int64(20260805)
	if s := os.Getenv("CRASH_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("CRASH_SEED %q: %v", s, err)
		}
		seed = v
	}
	t.Logf("crash seed: %d (set CRASH_SEED to replay)", seed)
	return seed
}

// crashDir returns the grid's base directory. Normally a test temp dir;
// with CRASH_ARTIFACT_DIR set (CI), a per-test directory that survives a
// failure so the journals, quarantine, and staging files can be uploaded
// as artifacts and inspected.
func crashDir(t *testing.T) string {
	t.Helper()
	base := os.Getenv("CRASH_ARTIFACT_DIR")
	if base == "" {
		return t.TempDir()
	}
	dir := filepath.Join(base, t.Name())
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if !t.Failed() {
			os.RemoveAll(dir)
		}
	})
	return dir
}

// partFiles lists every staging file under dir.
func partFiles(t *testing.T, dir string) []string {
	t.Helper()
	var parts []string
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(d.Name(), gridftp.PartSuffix) {
			parts = append(parts, path)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("walking %s: %v", dir, err)
	}
	return parts
}

// TestCrashRestartChaosLoop is the acceptance scenario: twenty iterations
// of publish → kill the consumer at a randomized point → restart it on
// the same directories. Two in three iterations arm a mid-stream reset at
// a randomized offset so the consumer dies holding a partial download;
// the rest kill it at a random instant of the pipeline. After every
// restart the replica must converge, and the resume counters must account
// for every statted partial byte exactly.
func TestCrashRestartChaosLoop(t *testing.T) {
	seed := crashSeed(t)
	rng := rand.New(rand.NewSource(seed))
	g, err := testbed.NewGrid(crashDir(t))
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	prodReg, consReg := obs.NewRegistry(), obs.NewRegistry()
	// The consumer flaps by design: deliveries must keep being retried
	// through every crash window, so the suspect threshold is out of reach.
	prod, err := g.AddSite("cern.ch", testbed.SiteOptions{
		Metrics:                prodReg,
		Retry:                  fastRetry(1),
		NotifyFailureThreshold: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	prodCtl, prodFTP := prod.Addr(), prod.DataAddr()

	// cut, when armed, resets the next passive-mode data connection after
	// that many wire bytes, then disarms itself; control and catalog
	// connections always run clean.
	var cut atomic.Int64
	consFaults := faults.New(seed, func(c faults.ConnInfo) faults.Plan {
		switch c.Addr {
		case g.CatalogAddr, prodCtl, prodFTP:
			return faults.Plan{}
		}
		if n := cut.Swap(0); n > 0 {
			return faults.Plan{ResetAfterBytes: n}
		}
		return faults.Plan{}
	}, faults.WithMetrics(consReg))

	// A single attempt per transfer and per retry op: the armed reset must
	// fail the pull outright (leaving the .part staged), not be absorbed
	// by an in-process restart before the kill lands.
	cons, err := g.AddSite("anl.gov", testbed.SiteOptions{
		Durable:          true,
		AutoReplicate:    true,
		Metrics:          consReg,
		Faults:           consFaults,
		Retry:            fastRetry(1),
		TransferAttempts: 1,
		Parallelism:      1, // interrupted .part files stay contiguous prefixes
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cons.SubscribeTo(prodCtl); err != nil {
		t.Fatal(err)
	}

	const iterations = 20
	const size = 300_000
	var wantResumes, wantResumedBytes int64
	var lastRequeued int
	published := make([]core.PublishedFile, 0, iterations)
	contents := make(map[string][]byte, iterations)

	for i := 0; i < iterations; i++ {
		rel := fmt.Sprintf("crash/f%02d.db", i)
		data := testbed.MakeData(size, seed+int64(i))
		midCut := i%3 != 2
		if midCut {
			cut.Store(int64(size/4) + rng.Int63n(size/2))
		}
		pf := publishData(t, g, prod, rel, data)
		published = append(published, pf)
		contents[rel] = data

		destPath := filepath.Join(cons.DataDir(), filepath.FromSlash(rel))
		partPath := destPath + gridftp.PartSuffix
		if midCut {
			// The reset fails the only transfer attempt; the failed pull
			// returns to the pending queue with its partial staged.
			waitUntil(t, 15*time.Second, "failed pull staging a partial", func() bool {
				if _, err := os.Stat(partPath); err != nil {
					return false
				}
				for _, fi := range cons.Pending() {
					if fi.LFN == pf.LFN {
						return true
					}
				}
				return false
			})
		} else {
			// Kill at a random instant: before the notice lands, mid
			// transfer, or after convergence — all must be survivable.
			time.Sleep(time.Duration(rng.Int63n(int64(25 * time.Millisecond))))
		}

		cons.Kill()
		var partSize int64
		if st, err := os.Stat(partPath); err == nil {
			partSize = st.Size()
		}
		if partSize > 0 {
			wantResumes++
			wantResumedBytes += partSize
		}

		cons, err = g.RestartSite("anl.gov")
		if err != nil {
			t.Fatalf("iteration %d: restart: %v", i, err)
		}
		rec := cons.Recovery()
		if midCut && rec.PullsRequeued < 1 {
			t.Fatalf("iteration %d: unfinished pull not requeued: %+v", i, rec)
		}
		if partSize > 0 && rec.PartsResumed != 1 {
			t.Fatalf("iteration %d: %d-byte partial not kept for resumption: %+v", i, partSize, rec)
		}
		lastRequeued = rec.PullsRequeued

		waitUntil(t, 20*time.Second, fmt.Sprintf("iteration %d replica convergence", i), func() bool {
			return cons.HasFile(pf.LFN)
		})
		got, err := os.ReadFile(destPath)
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("iteration %d: replicated content wrong: %v", i, err)
		}
		if parts := partFiles(t, cons.DataDir()); len(parts) != 0 {
			t.Fatalf("iteration %d: unquarantined partials after convergence: %v", i, parts)
		}
	}

	// Zero lost notifications: every publication of the run is present.
	for _, pf := range published {
		if !cons.HasFile(pf.LFN) {
			t.Errorf("published file %s lost across restarts", pf.LFN)
		}
	}
	for rel, want := range contents {
		got, err := os.ReadFile(filepath.Join(cons.DataDir(), filepath.FromSlash(rel)))
		if err != nil || !bytes.Equal(got, want) {
			t.Errorf("content mismatch for %s after the run: %v", rel, err)
		}
	}

	// Exact resume accounting: every partial statted at a kill was resumed
	// from its full length — transfers demonstrably continued from a
	// non-zero offset instead of restarting.
	if wantResumes < iterations/3 {
		t.Fatalf("only %d kills left a partial; the schedule did not exercise resumption", wantResumes)
	}
	text := consReg.Text()
	for series, want := range map[string]float64{
		"gdmp_gridftp_client_resumes_total":         float64(wantResumes),
		"gdmp_gridftp_client_resumed_bytes_total":   float64(wantResumedBytes),
		"gdmp_gridftp_client_resume_rejected_total": 0,
		"gdmp_recovery_pulls_requeued":              float64(lastRequeued),
	} {
		if got := metricValue(text, series); got != want {
			t.Errorf("%s = %v, want %v", series, got, want)
		}
	}
	t.Logf("resumed %d transfers, %d bytes skipped", wantResumes, wantResumedBytes)
}

// TestCrashRestartProducerNotificationDurability kills the producer while
// it holds undelivered notifications: the subscriber registry and its
// queues must come back from the journal, and delivery must complete once
// the subscriber is reachable — no publication lost to the crash.
func TestCrashRestartProducerNotificationDurability(t *testing.T) {
	seed := crashSeed(t)
	g, err := testbed.NewGrid(crashDir(t))
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	prodReg, consReg := obs.NewRegistry(), obs.NewRegistry()
	var consCtl addrBox
	var down atomic.Bool
	prodFaults := faults.New(seed, func(c faults.ConnInfo) faults.Plan {
		if down.Load() && c.Addr == consCtl.get() {
			return faults.Plan{RefuseDial: true}
		}
		return faults.Plan{}
	}, faults.WithMetrics(prodReg))

	prod, err := g.AddSite("cern.ch", testbed.SiteOptions{
		Durable:                true,
		Metrics:                prodReg,
		Faults:                 prodFaults,
		Retry:                  fastRetry(1),
		NotifyFailureThreshold: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	cons, err := g.AddSite("anl.gov", testbed.SiteOptions{
		Metrics: consReg,
		Retry:   fastRetry(3),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cons.SubscribeTo(prod.Addr()); err != nil {
		t.Fatal(err)
	}
	consCtl.set(cons.Addr())

	// Three publications pile up undelivered while the subscriber is dark.
	down.Store(true)
	files := make([]core.PublishedFile, 3)
	data := make([][]byte, 3)
	for i := range files {
		data[i] = testbed.MakeData(80_000, seed+int64(i))
		files[i] = publishData(t, g, prod, fmt.Sprintf("dur/f%d.db", i), data[i])
	}
	waitUntil(t, 10*time.Second, "undelivered queue to build", func() bool {
		return metricValue(prodReg.Text(), "gdmp_site_notify_queue_depth") == 3
	})

	// SIGKILL-equivalent crash with the queue loaded, then restart on the
	// same directories and addresses.
	prod, err = g.RestartSite("cern.ch")
	if err != nil {
		t.Fatal(err)
	}
	rec := prod.Recovery()
	if rec.SubscribersRestored != 1 {
		t.Fatalf("SubscribersRestored = %d, want 1", rec.SubscribersRestored)
	}
	if rec.NoticesRequeued != 3 {
		t.Fatalf("NoticesRequeued = %d, want 3", rec.NoticesRequeued)
	}
	if rec.FilesRestored != 3 {
		t.Fatalf("FilesRestored = %d, want 3", rec.FilesRestored)
	}
	if got := metricValue(prodReg.Text(), "gdmp_recovery_notices_requeued"); got != 3 {
		t.Fatalf("gdmp_recovery_notices_requeued = %v, want 3", got)
	}

	// The subscriber heals; the reborn producer delivers every queued
	// notice and the consumer converges on all three files.
	down.Store(false)
	waitUntil(t, 15*time.Second, "redelivery after restart", func() bool {
		return len(cons.Pending()) == 3
	})
	if n, err := cons.ProcessPending(); err != nil || n != 3 {
		t.Fatalf("ProcessPending = %d, %v", n, err)
	}
	for i, pf := range files {
		if !cons.HasFile(pf.LFN) {
			t.Fatalf("file %s lost across producer crash", pf.LFN)
		}
		got, err := os.ReadFile(filepath.Join(cons.DataDir(), "dur", fmt.Sprintf("f%d.db", i)))
		if err != nil || !bytes.Equal(got, data[i]) {
			t.Fatalf("content mismatch for %s: %v", pf.LFN, err)
		}
	}
	waitUntil(t, 10*time.Second, "queue drain", func() bool {
		return metricValue(prodReg.Text(), "gdmp_site_notify_queue_depth") == 0
	})
}

// TestCrashRestartQuarantine seeds a recovering site with every kind of
// damage reconcileDataDir must handle: a catalog entry whose bytes were
// truncated behind its back, a catalog entry whose bytes vanished, and an
// orphaned staging file no pull claims. The restart must quarantine the
// corrupt and orphaned bytes, drop the missing entry, and keep the
// healthy file — with the gdmp_recovery_* gauges accounting for each.
func TestCrashRestartQuarantine(t *testing.T) {
	crashSeed(t)
	g, err := testbed.NewGrid(crashDir(t))
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	reg := obs.NewRegistry()
	site, err := g.AddSite("cern.ch", testbed.SiteOptions{Durable: true, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	healthy := publishData(t, g, site, "q/ok.db", testbed.MakeData(50_000, 1))
	truncated := publishData(t, g, site, "q/trunc.db", testbed.MakeData(50_000, 2))
	missing := publishData(t, g, site, "q/gone.db", testbed.MakeData(50_000, 3))

	// Damage behind the journal's back.
	if err := os.Truncate(filepath.Join(site.DataDir(), "q", "trunc.db"), 10_000); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(site.DataDir(), "q", "gone.db")); err != nil {
		t.Fatal(err)
	}
	orphan := filepath.Join(site.DataDir(), "q", "stray.db"+gridftp.PartSuffix)
	if err := os.WriteFile(orphan, testbed.MakeData(12_345, 4), 0o644); err != nil {
		t.Fatal(err)
	}

	site, err = g.RestartSite("cern.ch")
	if err != nil {
		t.Fatal(err)
	}
	rec := site.Recovery()
	if rec.FilesRestored != 3 {
		t.Errorf("FilesRestored = %d, want 3", rec.FilesRestored)
	}
	if rec.Quarantined != 2 {
		t.Errorf("Quarantined = %d, want 2 (truncated file + orphan .part)", rec.Quarantined)
	}
	if rec.MissingFiles != 1 {
		t.Errorf("MissingFiles = %d, want 1", rec.MissingFiles)
	}
	if !site.HasFile(healthy.LFN) {
		t.Error("healthy file lost by recovery")
	}
	if site.HasFile(truncated.LFN) || site.HasFile(missing.LFN) {
		t.Error("damaged entries still in the local catalog")
	}
	if parts := partFiles(t, site.DataDir()); len(parts) != 0 {
		t.Errorf("orphaned staging files left in the pool: %v", parts)
	}
	qdir := filepath.Join(filepath.Dir(site.DataDir()), "state", "quarantine")
	entries, err := os.ReadDir(qdir)
	if err != nil || len(entries) != 2 {
		t.Fatalf("quarantine dir = %v entries, %v; want 2", len(entries), err)
	}
	text := reg.Text()
	for series, want := range map[string]float64{
		"gdmp_recovery_quarantined":    2,
		"gdmp_recovery_missing_files":  1,
		"gdmp_recovery_files_restored": 3,
	} {
		if got := metricValue(text, series); got != want {
			t.Errorf("%s = %v, want %v", series, got, want)
		}
	}
}
