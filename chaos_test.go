// Chaos integration tests: scripted partial failures injected with
// internal/faults must be fully absorbed by the unified retry/backoff
// layer, with the grid converging to the correct replica state and the
// gdmp_retry_* / gdmp_faults_* / gdmp_site_* series accounting for every
// injected fault exactly.
//
// Every test logs its seed; set CHAOS_SEED to replay a run.
package gdmp_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gdmp/internal/core"
	"gdmp/internal/faults"
	"gdmp/internal/obs"
	"gdmp/internal/retry"
	"gdmp/internal/testbed"
)

// chaosSeed returns the run's fault-injection seed (overridable with
// CHAOS_SEED) and logs it so a failure replays exactly.
func chaosSeed(t *testing.T) int64 {
	t.Helper()
	seed := int64(20260805)
	if s := os.Getenv("CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("CHAOS_SEED %q: %v", s, err)
		}
		seed = v
	}
	t.Logf("chaos seed: %d (set CHAOS_SEED to replay)", seed)
	return seed
}

// fastRetry is a quick deterministic backoff for test sites.
func fastRetry(attempts int) retry.Policy {
	return retry.Policy{
		Attempts:  attempts,
		BaseDelay: 2 * time.Millisecond,
		MaxDelay:  10 * time.Millisecond,
	}
}

// addrBox publishes an address to a fault script after site creation
// without racing the script's goroutines.
type addrBox struct {
	mu   sync.Mutex
	addr string
}

func (b *addrBox) set(a string) { b.mu.Lock(); b.addr = a; b.mu.Unlock() }
func (b *addrBox) get() string  { b.mu.Lock(); defer b.mu.Unlock(); return b.addr }

func waitUntil(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func publishData(t *testing.T, g *testbed.Grid, site *core.Site, rel string, data []byte) core.PublishedFile {
	t.Helper()
	if _, err := g.WriteSiteFile(site.Name(), rel, data); err != nil {
		t.Fatal(err)
	}
	pf, err := site.Publish(rel, core.PublishOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return pf
}

// TestChaosScriptedScheduleAbsorbed is the acceptance scenario: a scripted
// schedule of one refused GridFTP dial, one mid-stream reset after 64 KiB,
// and two dropped notifications must be fully absorbed — the consumer
// converges on the published file and every retry and fault is accounted
// for exactly in the metric families.
func TestChaosScriptedScheduleAbsorbed(t *testing.T) {
	seed := chaosSeed(t)
	g, err := testbed.NewGrid(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	prodReg, consReg := obs.NewRegistry(), obs.NewRegistry()

	// Producer: every dial to the consumer's control address is refused
	// twice (the two dropped notifies). The consumer's address is boxed
	// because the consumer does not exist yet.
	var consCtl addrBox
	prodFaults := faults.New(seed, func(c faults.ConnInfo) faults.Plan {
		if c.Addr == consCtl.get() && c.AddrSeq < 2 {
			return faults.Plan{RefuseDial: true}
		}
		return faults.Plan{}
	}, faults.WithMetrics(prodReg))

	// Attempts=1 disables the dial-level retry so the drops surface to the
	// notification redelivery queue rather than being absorbed by redials.
	prod, err := g.AddSite("cern.ch", testbed.SiteOptions{
		Metrics: prodReg,
		Faults:  prodFaults,
		Retry:   fastRetry(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	prodCtl, prodFTP := prod.Addr(), prod.DataAddr()

	// Consumer: the first control dial to the producer's GridFTP endpoint
	// is refused, and the first passive-mode data connection is reset
	// after exactly 64 KiB on the wire. Everything else runs clean.
	var consMu sync.Mutex
	dataConns := 0
	consFaults := faults.New(seed, func(c faults.ConnInfo) faults.Plan {
		switch c.Addr {
		case g.CatalogAddr, prodCtl:
			return faults.Plan{}
		case prodFTP:
			if c.AddrSeq == 0 {
				return faults.Plan{RefuseDial: true}
			}
			return faults.Plan{}
		}
		// Any other address is a passive-mode data connection.
		consMu.Lock()
		defer consMu.Unlock()
		dataConns++
		if dataConns == 1 {
			return faults.Plan{ResetAfterBytes: 64 << 10}
		}
		return faults.Plan{}
	}, faults.WithMetrics(consReg))

	cons, err := g.AddSite("anl.gov", testbed.SiteOptions{
		Metrics:     consReg,
		Faults:      consFaults,
		Retry:       fastRetry(3),
		Parallelism: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cons.SubscribeTo(prodCtl); err != nil {
		t.Fatal(err)
	}
	consCtl.set(cons.Addr())

	data := testbed.MakeData(256<<10, 42)
	pf := publishData(t, g, prod, "chaos/f.db", data)

	// The notice survives two dropped deliveries.
	waitUntil(t, 10*time.Second, "notification delivery", func() bool {
		return len(cons.Pending()) == 1 &&
			metricValue(prodReg.Text(), `gdmp_site_notifications_total{outcome="ok"}`) == 1
	})
	// The pull survives one refused dial and one mid-stream reset.
	if n, err := cons.ProcessPending(); err != nil || n != 1 {
		t.Fatalf("ProcessPending = %d, %v", n, err)
	}
	if !cons.HasFile(pf.LFN) {
		t.Fatal("consumer did not converge on the published file")
	}
	got, err := os.ReadFile(filepath.Join(cons.DataDir(), "chaos", "f.db"))
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("replicated content mismatch: %v", err)
	}

	// Exact fault accounting, from the injectors themselves...
	if n := consFaults.Injected(faults.KindDialRefused); n != 1 {
		t.Errorf("consumer dial refusals = %d, want 1", n)
	}
	if n := consFaults.Injected(faults.KindReset); n != 1 {
		t.Errorf("consumer resets = %d, want 1", n)
	}
	if n := prodFaults.Injected(faults.KindDialRefused); n != 2 {
		t.Errorf("producer dial refusals = %d, want 2", n)
	}

	// ...and from the metric families: the retry layer took exactly one
	// backoff per absorbed transfer fault and the redelivery queue exactly
	// two for the dropped notifies, then drained to zero.
	waitUntil(t, 5*time.Second, "notify queue drain", func() bool {
		return metricValue(prodReg.Text(), `gdmp_site_notify_queue_depth`) == 0
	})
	cons2 := consReg.Text()
	for series, want := range map[string]float64{
		`gdmp_retry_attempts_total{op="gridftp.get",outcome="error"}`: 2,
		`gdmp_retry_attempts_total{op="gridftp.get",outcome="ok"}`:    1,
		`gdmp_retry_ops_total{op="gridftp.get",outcome="ok"}`:         1,
		`gdmp_retry_backoffs_total{op="gridftp.get"}`:                 2,
		`gdmp_retry_ops_total{op="core.replicate",outcome="ok"}`:      1,
		`gdmp_faults_injected_total{kind="dial_refused"}`:             1,
		`gdmp_faults_injected_total{kind="reset"}`:                    1,
		`gdmp_site_replications_total{outcome="ok"}`:                  1,
		`gdmp_site_notifications_received_total`:                      1,
	} {
		if got := metricValue(cons2, series); got != want {
			t.Errorf("consumer %s = %v, want %v", series, got, want)
		}
	}
	prod2 := prodReg.Text()
	for series, want := range map[string]float64{
		`gdmp_site_notifications_total{outcome="error"}`:            2,
		`gdmp_site_notifications_total{outcome="ok"}`:               1,
		`gdmp_site_notify_redeliveries_total`:                       2,
		`gdmp_site_notify_queue_depth`:                              0,
		`gdmp_site_suspect_subscribers`:                             0,
		`gdmp_retry_attempts_total{op="core.dial",outcome="error"}`: 2,
		`gdmp_retry_ops_total{op="core.dial",outcome="exhausted"}`:  2,
		`gdmp_retry_ops_total{op="core.dial",outcome="ok"}`:         1,
		`gdmp_faults_injected_total{kind="dial_refused"}`:           2,
	} {
		if got := metricValue(prod2, series); got != want {
			t.Errorf("producer %s = %v, want %v", series, got, want)
		}
	}
}

// TestChaosFlappingSubscriberSuspectAndHeal drives a subscriber past the
// consecutive-failure threshold: the producer must mark it suspect, stop
// queueing for it, and heal it on re-subscribe, with the missed files
// reconciled through Recover.
func TestChaosFlappingSubscriberSuspectAndHeal(t *testing.T) {
	seed := chaosSeed(t)
	g, err := testbed.NewGrid(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	prodReg, consReg := obs.NewRegistry(), obs.NewRegistry()
	var consCtl addrBox
	var down atomic.Bool
	prodFaults := faults.New(seed, func(c faults.ConnInfo) faults.Plan {
		if down.Load() && c.Addr == consCtl.get() {
			return faults.Plan{RefuseDial: true}
		}
		return faults.Plan{}
	}, faults.WithMetrics(prodReg))

	prod, err := g.AddSite("cern.ch", testbed.SiteOptions{
		Metrics:                prodReg,
		Faults:                 prodFaults,
		Retry:                  fastRetry(1),
		NotifyFailureThreshold: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	cons, err := g.AddSite("anl.gov", testbed.SiteOptions{
		Metrics: consReg,
		Retry:   fastRetry(3),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cons.SubscribeTo(prod.Addr()); err != nil {
		t.Fatal(err)
	}
	consCtl.set(cons.Addr())

	// The subscriber flaps: two consecutive failed deliveries.
	down.Store(true)
	a := publishData(t, g, prod, "flap/a.db", testbed.MakeData(60_000, 1))
	waitUntil(t, 10*time.Second, "subscriber suspect", func() bool {
		return metricValue(prodReg.Text(), `gdmp_site_suspect_subscribers`) == 1
	})
	if s := prod.SuspectSubscribers(); len(s) != 1 || s[0] != "anl.gov" {
		t.Fatalf("SuspectSubscribers = %v", s)
	}

	// While suspect, publications are not queued for it.
	b := publishData(t, g, prod, "flap/b.db", testbed.MakeData(60_000, 2))
	prodText := prodReg.Text()
	if got := metricValue(prodText, `gdmp_site_notify_skipped_total`); got != 1 {
		t.Errorf("notify_skipped_total = %v, want 1", got)
	}
	if got := metricValue(prodText, `gdmp_site_notify_queue_depth`); got != 0 {
		t.Errorf("notify_queue_depth = %v, want 0 (suspect queue dropped)", got)
	}

	// Heal: the consumer comes back, reconciles through the producer's
	// catalog, and re-subscribes.
	down.Store(false)
	fetched, err := cons.Recover(prod.Addr())
	if err != nil || fetched != 2 {
		t.Fatalf("Recover = %d, %v", fetched, err)
	}
	if !cons.HasFile(a.LFN) || !cons.HasFile(b.LFN) {
		t.Fatal("Recover did not reconcile the missed files")
	}
	if err := cons.SubscribeTo(prod.Addr()); err != nil {
		t.Fatal(err)
	}
	if got := metricValue(prodReg.Text(), `gdmp_site_suspect_subscribers`); got != 0 {
		t.Errorf("suspect_subscribers after re-subscribe = %v, want 0", got)
	}

	// Deliveries flow again.
	c := publishData(t, g, prod, "flap/c.db", testbed.MakeData(60_000, 3))
	waitUntil(t, 10*time.Second, "post-heal delivery", func() bool {
		return len(cons.Pending()) == 1
	})
	if n, err := cons.ProcessPending(); err != nil || n != 1 {
		t.Fatalf("ProcessPending = %d, %v", n, err)
	}
	if !cons.HasFile(c.LFN) {
		t.Fatal("post-heal publication not replicated")
	}

	prodText = prodReg.Text()
	for series, want := range map[string]float64{
		`gdmp_site_notifications_total{outcome="error"}`: 2,
		`gdmp_site_notifications_total{outcome="ok"}`:    1,
		`gdmp_site_notify_redeliveries_total`:            1,
		`gdmp_site_notify_skipped_total`:                 1,
	} {
		if got := metricValue(prodText, series); got != want {
			t.Errorf("producer %s = %v, want %v", series, got, want)
		}
	}
}

// TestRecoverWithMidTransferFailure reconciles a consumer against a
// producer catalog while the first transfer's data connection is reset
// mid-stream: Recover must still fetch every file.
func TestRecoverWithMidTransferFailure(t *testing.T) {
	seed := chaosSeed(t)
	g, err := testbed.NewGrid(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	prod, err := g.AddSite("cern.ch", testbed.SiteOptions{Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	prodCtl, prodFTP := prod.Addr(), prod.DataAddr()

	consReg := obs.NewRegistry()
	var consMu sync.Mutex
	dataConns := 0
	consFaults := faults.New(seed, func(c faults.ConnInfo) faults.Plan {
		switch c.Addr {
		case g.CatalogAddr, prodCtl, prodFTP:
			return faults.Plan{}
		}
		consMu.Lock()
		defer consMu.Unlock()
		dataConns++
		if dataConns == 1 {
			return faults.Plan{ResetAfterBytes: 32 << 10}
		}
		return faults.Plan{}
	}, faults.WithMetrics(consReg))

	cons, err := g.AddSite("anl.gov", testbed.SiteOptions{
		Metrics:     consReg,
		Faults:      consFaults,
		Retry:       fastRetry(3),
		Parallelism: 1,
	})
	if err != nil {
		t.Fatal(err)
	}

	da := testbed.MakeData(120_000, 4)
	db := testbed.MakeData(120_000, 5)
	a := publishData(t, g, prod, "rec/a.db", da)
	b := publishData(t, g, prod, "rec/b.db", db)

	fetched, err := cons.Recover(prodCtl)
	if err != nil || fetched != 2 {
		t.Fatalf("Recover = %d, %v", fetched, err)
	}
	if !cons.HasFile(a.LFN) || !cons.HasFile(b.LFN) {
		t.Fatal("files missing after Recover")
	}
	for rel, want := range map[string][]byte{"rec/a.db": da, "rec/b.db": db} {
		got, err := os.ReadFile(filepath.Join(cons.DataDir(), filepath.FromSlash(rel)))
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("content mismatch for %s: %v", rel, err)
		}
	}
	if n := consFaults.Injected(faults.KindReset); n != 1 {
		t.Errorf("resets = %d, want 1", n)
	}
	if got := metricValue(consReg.Text(),
		`gdmp_retry_attempts_total{op="gridftp.get",outcome="error"}`); got != 1 {
		t.Errorf("gridftp.get error attempts = %v, want 1", got)
	}
}

// TestProcessPendingRequeuesRemainder pins ProcessPending's
// partial-failure contract under the concurrent scheduler: every pending
// file is attempted, the ones that fail (and only those) return to the
// queue, and the count reflects the files that actually arrived. An older
// sequential bug dropped the unattempted tail on the first failure; the
// concurrent version must lose no notice either.
func TestProcessPendingRequeuesRemainder(t *testing.T) {
	g, err := testbed.NewGrid(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	prod, err := g.AddSite("cern.ch", testbed.SiteOptions{Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	cons, err := g.AddSite("anl.gov", testbed.SiteOptions{
		Metrics: obs.NewRegistry(),
		Retry:   fastRetry(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cons.SubscribeTo(prod.Addr()); err != nil {
		t.Fatal(err)
	}

	d1 := testbed.MakeData(40_000, 6)
	f1 := publishData(t, g, prod, "pp/f1.db", d1)
	// Sabotage f1 at the source: the stage request will fail, and with it
	// the first replication.
	if err := os.Remove(filepath.Join(prod.DataDir(), "pp", "f1.db")); err != nil {
		t.Fatal(err)
	}
	f2 := publishData(t, g, prod, "pp/f2.db", testbed.MakeData(40_000, 7))
	f3 := publishData(t, g, prod, "pp/f3.db", testbed.MakeData(40_000, 8))

	waitUntil(t, 10*time.Second, "three pending notices", func() bool {
		return len(cons.Pending()) == 3
	})

	n, err := cons.ProcessPending()
	if err == nil {
		t.Fatal("ProcessPending succeeded with a sabotaged source")
	}
	if !strings.Contains(err.Error(), f1.LFN) {
		t.Fatalf("error %v does not name the failed file %s", err, f1.LFN)
	}
	if n != 2 {
		t.Fatalf("fetched %d files, want 2 (the healthy ones must not be held back)", n)
	}
	if !cons.HasFile(f2.LFN) || !cons.HasFile(f3.LFN) {
		t.Fatal("healthy files missing after partial failure")
	}
	pending := cons.Pending()
	if len(pending) != 1 {
		t.Fatalf("pending after failure = %d entries, want only the failed file re-queued", len(pending))
	}
	if pending[0].LFN != f1.LFN {
		t.Fatalf("re-queued entry = %s, want %s", pending[0].LFN, f1.LFN)
	}

	// Repair the source; the re-queued remainder drains completely.
	if _, err := g.WriteSiteFile(prod.Name(), "pp/f1.db", d1); err != nil {
		t.Fatal(err)
	}
	n, err = cons.ProcessPending()
	if err != nil || n != 1 {
		t.Fatalf("ProcessPending after repair = %d, %v", n, err)
	}
	for _, lfn := range []string{f1.LFN, f2.LFN, f3.LFN} {
		if !cons.HasFile(lfn) {
			t.Fatalf("%s missing after retry", lfn)
		}
	}
}
