// Erasure-coded local repair integration tests: parity sidecars written
// at publish/land time must let the scrubber rebuild block-level damage
// in place — zero WAN bytes — with quarantine plus re-pull surviving only
// as the fallback for damage beyond the parity budget, and the
// gdmp_parity_* / gdmp_repair_bytes_* series splitting the two repair
// modes exactly.
//
// Every test logs its seed; set PARITY_SEED to replay a run.
package gdmp_test

import (
	"context"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"gdmp/internal/faults"
	"gdmp/internal/gridftp"
	"gdmp/internal/obs"
	"gdmp/internal/parity"
	"gdmp/internal/testbed"
)

// paritySeed returns the run's corruption seed (overridable with
// PARITY_SEED) and logs it so a failure replays exactly.
func paritySeed(t *testing.T) int64 {
	t.Helper()
	seed := int64(20260805)
	if s := os.Getenv("PARITY_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("PARITY_SEED %q: %v", s, err)
		}
		seed = v
	}
	t.Logf("parity seed: %d (set PARITY_SEED to replay)", seed)
	return seed
}

// parityBlockSize mirrors the sidecar geometry: data blocks are
// ceil(size/k) bytes, so block-aligned fault injection lands exactly on
// coded block boundaries and the damage budget is exact.
func parityBlockSize(size, k int) int64 {
	return (int64(size) + int64(k) - 1) / int64(k)
}

// sidecarFiles lists every parity sidecar under dir.
func sidecarFiles(t *testing.T, dir string) []string {
	t.Helper()
	var out []string
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && parity.IsSidecar(d.Name()) {
			out = append(out, path)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("walking %s: %v", dir, err)
	}
	return out
}

// TestParityLocalRepairAndFallback is the acceptance scenario: on a
// parity-enabled consumer, damage within the parity budget (≤m blocks) is
// rebuilt in place from the sidecar — byte-identical, no quarantine, zero
// WAN bytes — while damage beyond the budget (>m blocks) falls back to
// the PR 5 quarantine + re-pull path, with the two modes split exactly in
// the degraded-mode byte counters.
func TestParityLocalRepairAndFallback(t *testing.T) {
	const (
		k    = 4
		m    = 2
		size = 8192
	)
	seed := paritySeed(t)
	ctx := context.Background()
	base := t.TempDir()
	g, err := testbed.NewGrid(base)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	prodReg, consReg := obs.NewRegistry(), obs.NewRegistry()
	prod, err := g.AddSite("cern.ch", testbed.SiteOptions{
		Durable: true,
		Metrics: prodReg,
		Retry:   fastRetry(3),
		ParityK: k,
		ParityM: m,
	})
	if err != nil {
		t.Fatal(err)
	}
	cons, err := g.AddSite("fnal.gov", testbed.SiteOptions{
		AutoReplicate: true,
		Durable:       true,
		Metrics:       consReg,
		Retry:         fastRetry(3),
		ParityK:       k,
		ParityM:       m,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cons.SubscribeTo(prod.Addr()); err != nil {
		t.Fatal(err)
	}

	data := testbed.MakeData(size, seed+1)
	pf := publishData(t, g, prod, "par/coded.db", data)
	waitUntil(t, 10*time.Second, "auto-replication of the coded file", func() bool {
		return cons.HasFile(pf.LFN)
	})

	// Both the producer's original and the landed replica got sidecars.
	consPath := filepath.Join(cons.DataDir(), "par", "coded.db")
	for _, p := range []string{
		parity.SidecarPath(filepath.Join(prod.DataDir(), "par", "coded.db")),
		parity.SidecarPath(consPath),
	} {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("sidecar missing after publish/land: %v", err)
		}
	}

	// Damage within the budget: m distinct coded blocks. One scrub pass
	// rebuilds in place — no corruption verdict, no repair queued.
	bs := parityBlockSize(size, k)
	damaged, err := faults.FlipBlocks(consPath, seed, bs, m)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("within-budget damage: blocks %v", damaged)
	rep, err := cons.ScrubPass(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scanned != 1 || rep.Rebuilt != 1 || rep.Corrupt != 0 || rep.Repairs != 0 || rep.Fallbacks != 0 {
		t.Fatalf("scrub report = %+v, want 1 scanned / 1 rebuilt / 0 corrupt", rep)
	}
	got, err := os.ReadFile(consPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(data) {
		t.Fatal("rebuilt replica is not byte-identical")
	}
	qdir := filepath.Join(base, "fnal.gov", "state", "quarantine")
	if ents, err := os.ReadDir(qdir); err == nil && len(ents) != 0 {
		t.Fatalf("local rebuild quarantined %d files, want 0", len(ents))
	}

	// Damage beyond the budget: m+1 blocks. Rebuild must refuse, the
	// replica is quarantined and withdrawn, and the repair driver re-pulls
	// it over the WAN — landing a fresh sidecar with it.
	damaged, err = faults.FlipBlocks(consPath, seed+2, bs, m+1)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("beyond-budget damage: blocks %v", damaged)
	rep, err = cons.ScrubPass(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scanned != 1 || rep.Rebuilt != 0 || rep.Corrupt != 1 || rep.Fallbacks != 1 || rep.Repairs != 1 {
		t.Fatalf("scrub report = %+v, want 1 corrupt / 1 fallback / 1 repair", rep)
	}
	if err := cons.RepairQuiesce(ctx); err != nil {
		t.Fatal(err)
	}
	got, err = os.ReadFile(consPath)
	if err != nil {
		t.Fatal(err)
	}
	if !cons.HasFile(pf.LFN) || string(got) != string(data) {
		t.Fatal("fallback replica was not re-pulled byte-identically")
	}
	if _, err := os.Stat(parity.SidecarPath(consPath)); err != nil {
		t.Fatalf("sidecar not regenerated after fallback re-pull: %v", err)
	}
	ents, err := os.ReadDir(qdir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("quarantine holds %d files after fallback, want 1", len(ents))
	}

	// Exact degraded-mode accounting: the rebuild healed m blocks locally,
	// the fallback re-crossed the WAN with the whole file.
	text := consReg.Text()
	for series, want := range map[string]float64{
		"gdmp_parity_sidecars_total":       2, // landing + post-fallback regeneration
		"gdmp_parity_rebuilds_total":       1,
		"gdmp_parity_fallbacks_total":      1,
		"gdmp_repair_bytes_local_total":    float64(int64(m) * bs),
		"gdmp_repair_bytes_repulled_total": size,
		"gdmp_scrub_corrupt_total":         1,
		"gdmp_repair_attempts_total":       1,
		"gdmp_repair_success_total":        1,
	} {
		if got := metricValue(text, series); got != want {
			t.Errorf("%s = %v, want %v", series, got, want)
		}
	}

	// The split also surfaces in the status payload gdmp status renders.
	st := cons.Status()
	if st.ParityRebuilds != 1 || st.ParityFallbacks != 1 ||
		st.RepairBytesLocal != int64(m)*bs || st.RepairBytesRepulled != size {
		t.Fatalf("status parity block = %+v", st)
	}
}

// TestParityPartitionedSiteHealsLocally is the zero-WAN proof: a consumer
// cut off from every peer (its only producer is dead) still heals
// within-budget bit-rot purely from its local sidecar, with
// gdmp_repair_bytes_repulled_total pinned at zero.
func TestParityPartitionedSiteHealsLocally(t *testing.T) {
	const (
		k    = 8
		m    = 2
		size = 16000
	)
	seed := paritySeed(t)
	ctx := context.Background()
	g, err := testbed.NewGrid(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	consReg := obs.NewRegistry()
	prod, err := g.AddSite("cern.ch", testbed.SiteOptions{
		Metrics: obs.NewRegistry(),
		Retry:   fastRetry(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	cons, err := g.AddSite("fnal.gov", testbed.SiteOptions{
		AutoReplicate: true,
		Durable:       true,
		Metrics:       consReg,
		Retry:         fastRetry(2),
		ParityK:       k,
		ParityM:       m,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cons.SubscribeTo(prod.Addr()); err != nil {
		t.Fatal(err)
	}
	data := testbed.MakeData(size, seed+1)
	pf := publishData(t, g, prod, "iso/lonely.db", data)
	waitUntil(t, 10*time.Second, "auto-replication", func() bool {
		return cons.HasFile(pf.LFN)
	})

	// Partition: the only peer dies. Any repair needing the WAN would fail.
	prod.Kill()

	consPath := filepath.Join(cons.DataDir(), "iso", "lonely.db")
	bs := parityBlockSize(size, k)
	if _, err := faults.FlipBlocks(consPath, seed, bs, m); err != nil {
		t.Fatal(err)
	}
	rep, err := cons.ScrubPass(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scanned != 1 || rep.Rebuilt != 1 || rep.Corrupt != 0 || rep.Repairs != 0 {
		t.Fatalf("scrub report = %+v, want 1 rebuilt with no repairs queued", rep)
	}
	got, err := os.ReadFile(consPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(data) {
		t.Fatal("partitioned site did not heal byte-identically")
	}

	// The anti-entropy round sees the partition for what it is — and the
	// heal still cost zero WAN bytes.
	ae, err := cons.AntiEntropyPass(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ae.Peers != 1 || ae.Failed != 1 {
		t.Fatalf("anti-entropy report = %+v, want the one peer unreachable", ae)
	}
	text := consReg.Text()
	for series, want := range map[string]float64{
		"gdmp_parity_rebuilds_total":       1,
		"gdmp_parity_fallbacks_total":      0,
		"gdmp_repair_bytes_local_total":    float64(int64(m) * bs),
		"gdmp_repair_bytes_repulled_total": 0,
		"gdmp_repair_attempts_total":       0,
		"gdmp_scrub_corrupt_total":         0,
	} {
		if got := metricValue(text, series); got != want {
			t.Errorf("%s = %v, want %v", series, got, want)
		}
	}
}

// TestParityCrashMidSidecarWrite pins the crash-safety ordering around
// sidecar writes: after an abrupt kill, restart recovery quarantines
// sidecar staging debris, drops journaled sidecars that no longer verify,
// re-adopts a valid sidecar the crash left unjournaled (bytes renamed,
// journal record never committed), and the next scrub passes regenerate
// and rebuild as if nothing happened.
func TestParityCrashMidSidecarWrite(t *testing.T) {
	const (
		k    = 4
		m    = 2
		size = 6000
	)
	seed := paritySeed(t)
	ctx := context.Background()
	base := crashDir(t)
	g, err := testbed.NewGrid(base)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	reg := obs.NewRegistry()
	site, err := g.AddSite("desy.de", testbed.SiteOptions{
		Durable: true,
		Metrics: reg,
		Retry:   fastRetry(1),
		ParityK: k,
		ParityM: m,
	})
	if err != nil {
		t.Fatal(err)
	}
	aData := testbed.MakeData(size, seed+1)
	bData := testbed.MakeData(size, seed+2)
	publishData(t, g, site, "crash/a.db", aData)
	publishData(t, g, site, "crash/b.db", bData)
	aPath := filepath.Join(site.DataDir(), "crash", "a.db")
	bPath := filepath.Join(site.DataDir(), "crash", "b.db")
	for _, p := range []string{aPath, bPath} {
		if _, err := os.Stat(parity.SidecarPath(p)); err != nil {
			t.Fatalf("sidecar missing after publish: %v", err)
		}
	}

	site.Kill()

	// The crash left a mess: both journaled sidecars rotted on disk, and a
	// sidecar write died mid-stage, leaving .part debris.
	if _, err := faults.FlipBytes(parity.SidecarPath(aPath), seed+3, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := faults.FlipBytes(parity.SidecarPath(bPath), seed+4, 4); err != nil {
		t.Fatal(err)
	}
	debris := parity.SidecarPath(filepath.Join(site.DataDir(), "crash", "c.db")) + gridftp.PartSuffix
	if err := os.WriteFile(debris, []byte("torn sidecar write"), 0o644); err != nil {
		t.Fatal(err)
	}

	site, err = g.RestartSite("desy.de")
	if err != nil {
		t.Fatal(err)
	}

	// Recovery: debris quarantined, unverifiable sidecars dropped.
	if _, err := os.Stat(debris); !os.IsNotExist(err) {
		t.Fatal("sidecar staging debris survived recovery in the data dir")
	}
	qdir := filepath.Join(base, "desy.de", "state", "quarantine")
	ents, err := os.ReadDir(qdir)
	if err != nil || len(ents) != 1 {
		t.Fatalf("quarantine after recovery = %v entries (%v), want 1", len(ents), err)
	}
	if scs := sidecarFiles(t, site.DataDir()); len(scs) != 0 {
		t.Fatalf("unverifiable sidecars survived recovery: %v", scs)
	}

	// The other crash window: sidecar bytes renamed into place, journal
	// record never committed. Plant exactly that state for b, then rot b's
	// data within budget — the pass must re-adopt the sidecar and rebuild.
	sc, err := parity.CreateFile(bPath, k, m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.WriteFile(parity.SidecarPath(bPath)); err != nil {
		t.Fatal(err)
	}
	bs := parityBlockSize(size, k)
	if _, err := faults.FlipBlocks(bPath, seed+5, bs, m); err != nil {
		t.Fatal(err)
	}
	rep, err := site.ScrubPass(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scanned != 2 || rep.Rebuilt != 1 || rep.Corrupt != 0 {
		t.Fatalf("post-crash scrub report = %+v, want 2 scanned / 1 rebuilt", rep)
	}
	got, err := os.ReadFile(bPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(bData) {
		t.Fatal("re-adopted sidecar did not rebuild byte-identically")
	}
	// a was healthy without a usable sidecar: the same pass regenerated it.
	if _, err := os.Stat(parity.SidecarPath(aPath)); err != nil {
		t.Fatalf("sidecar of a.db not regenerated after recovery drop: %v", err)
	}

	// The regenerated sidecar is live, not just present: rot a within
	// budget and rebuild from it.
	if _, err := faults.FlipBlocks(aPath, seed+6, bs, m); err != nil {
		t.Fatal(err)
	}
	rep, err = site.ScrubPass(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rebuilt != 1 || rep.Corrupt != 0 {
		t.Fatalf("regenerated-sidecar scrub report = %+v, want 1 rebuilt", rep)
	}
	if got, _ := os.ReadFile(aPath); string(got) != string(aData) {
		t.Fatal("regenerated sidecar did not rebuild byte-identically")
	}

	text := reg.Text()
	for series, want := range map[string]float64{
		// 2 at publish + 1 regeneration (the re-adoption is not a new write)
		"gdmp_parity_sidecars_total":       3,
		"gdmp_parity_rebuilds_total":       2,
		"gdmp_parity_fallbacks_total":      0,
		"gdmp_repair_bytes_repulled_total": 0,
	} {
		if got := metricValue(text, series); got != want {
			t.Errorf("%s = %v, want %v", series, got, want)
		}
	}
}

// TestParitySidecarRetention pins the retention contract: a sidecar never
// outlives the replica it describes. Withdrawal (damage beyond budget)
// deletes it with the data file, a missing replica's sidecar is dropped by
// the same pass that notices, an orphan on disk is swept within one pass,
// and no sidecar ever lands in quarantine.
func TestParitySidecarRetention(t *testing.T) {
	const (
		k    = 4
		m    = 2
		size = 6000
	)
	seed := paritySeed(t)
	ctx := context.Background()
	base := t.TempDir()
	g, err := testbed.NewGrid(base)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	reg := obs.NewRegistry()
	site, err := g.AddSite("in2p3.fr", testbed.SiteOptions{
		Durable: true,
		Metrics: reg,
		Retry:   fastRetry(1),
		ParityK: k,
		ParityM: m,
	})
	if err != nil {
		t.Fatal(err)
	}
	publishData(t, g, site, "ret/doomed.db", testbed.MakeData(size, seed+1))
	publishData(t, g, site, "ret/vanish.db", testbed.MakeData(size, seed+2))
	doomed := filepath.Join(site.DataDir(), "ret", "doomed.db")
	vanish := filepath.Join(site.DataDir(), "ret", "vanish.db")

	// Beyond-budget damage withdraws the replica; its sidecar must go with
	// it — deleted, not quarantined. The repair fails (no other replica
	// exists), so nothing resurrects either file.
	bs := parityBlockSize(size, k)
	if _, err := faults.FlipBlocks(doomed, seed, bs, m+1); err != nil {
		t.Fatal(err)
	}
	rep, err := site.ScrubPass(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Corrupt != 1 || rep.Fallbacks != 1 {
		t.Fatalf("scrub report = %+v, want 1 corrupt / 1 fallback", rep)
	}
	if err := site.RepairQuiesce(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(parity.SidecarPath(doomed)); !os.IsNotExist(err) {
		t.Fatal("withdrawn replica's sidecar outlived it")
	}
	qdir := filepath.Join(base, "in2p3.fr", "state", "quarantine")
	ents, err := os.ReadDir(qdir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("quarantine holds %d files, want only the corrupt data file", len(ents))
	}
	for _, e := range ents {
		if parity.IsSidecar(e.Name()) {
			t.Fatalf("a sidecar was quarantined: %s", e.Name())
		}
	}

	// Orphans: a replica whose bytes vanish loses its sidecar in the pass
	// that notices, and a stray sidecar next to nothing is swept the same
	// way.
	if err := os.Remove(vanish); err != nil {
		t.Fatal(err)
	}
	ghost := parity.SidecarPath(filepath.Join(site.DataDir(), "ret", "ghost.db"))
	if err := os.WriteFile(ghost, []byte("parity for nothing"), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err = site.ScrubPass(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Missing != 1 {
		t.Fatalf("scrub report = %+v, want 1 missing", rep)
	}
	if err := site.RepairQuiesce(ctx); err != nil {
		t.Fatal(err)
	}
	if scs := sidecarFiles(t, site.DataDir()); len(scs) != 0 {
		t.Fatalf("sidecars outlived their replicas: %v", scs)
	}

	// Restart resurrection check: the journal agrees nothing survives.
	site.Kill()
	site, err = g.RestartSite("in2p3.fr")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := site.ScrubPass(ctx); err != nil {
		t.Fatal(err)
	}
	if scs := sidecarFiles(t, site.DataDir()); len(scs) != 0 {
		t.Fatalf("restart resurrected sidecars: %v", scs)
	}
}
