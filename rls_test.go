// Replica Location Service integration tests: the two-tier RLS split of
// the replica catalog. A site's local catalog doubles as its Local
// Replica Catalog (LRC), bloom digests of it live as soft state in the
// Replica Location Index co-hosted with the central catalog server, and
// lookups fall through three tiers — own LRC (read-your-writes), the
// central location table, and RLI candidates confirmed by LRC point
// queries.
//
// Every property test logs its seed; set RLS_SEED to replay a run.
package gdmp_test

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"
	"time"

	"gdmp/internal/obs"
	"gdmp/internal/replica"
	"gdmp/internal/testbed"
)

// rlsSeed returns the run's property-test seed (overridable with
// RLS_SEED) and logs it so a failure replays exactly.
func rlsSeed(t *testing.T) int64 {
	t.Helper()
	seed := int64(20260809)
	if s := os.Getenv("RLS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("RLS_SEED %q: %v", s, err)
		}
		seed = v
	}
	t.Logf("rls seed: %d (set RLS_SEED to replay)", seed)
	return seed
}

// TestRLSReadYourWrites: a freshly published file is visible to its own
// site through the LRC tier immediately — before any digest has been
// pushed, while every RLI view of the site is arbitrarily stale.
func TestRLSReadYourWrites(t *testing.T) {
	ctx := context.Background()
	g, err := testbed.NewGrid(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	prodReg := obs.NewRegistry()
	prod, err := g.AddSite("cern.ch", testbed.SiteOptions{Metrics: prodReg})
	if err != nil {
		t.Fatal(err)
	}
	cons, err := g.AddSite("fnal.gov", testbed.SiteOptions{Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}

	pf := publishData(t, g, prod, "rls/own.db", testbed.MakeData(8_000, 1))

	// No digest was ever pushed; the RLI has never heard of cern.ch.
	if got := g.CatalogSrv.RLI().Sites(); len(got) != 0 {
		t.Fatalf("RLI unexpectedly populated: %v", got)
	}
	pfns, source, err := prod.Locate(ctx, pf.LFN)
	if err != nil {
		t.Fatalf("own Locate: %v", err)
	}
	if source != "lrc" {
		t.Fatalf("own Locate answered from %q, want lrc", source)
	}
	if len(pfns) != 1 || pfns[0].Addr != prod.DataAddr() {
		t.Fatalf("own Locate = %v", pfns)
	}

	// A peer resolves through the central catalog tier.
	if _, source, err = cons.Locate(ctx, pf.LFN); err != nil || source != "catalog" {
		t.Fatalf("peer Locate = %q, %v; want catalog", source, err)
	}
}

// TestRLSRLIFallbackAfterLocationLoss is the acceptance scenario for the
// third tier: when the central catalog's location table loses a replica
// (withdrawal race, partial registration), a pull still succeeds by
// asking the RLI which LRCs might hold the LFN and confirming with a
// point query.
func TestRLSRLIFallbackAfterLocationLoss(t *testing.T) {
	ctx := context.Background()
	g, err := testbed.NewGrid(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	prod, err := g.AddSite("cern.ch", testbed.SiteOptions{Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	consReg := obs.NewRegistry()
	cons, err := g.AddSite("fnal.gov", testbed.SiteOptions{Metrics: consReg})
	if err != nil {
		t.Fatal(err)
	}

	data := testbed.MakeData(32_000, 2)
	pf := publishData(t, g, prod, "rls/lost.db", data)

	// The producer condenses its LRC into the RLI.
	if outcome, err := prod.PushDigest(ctx); err != nil || outcome != replica.PushNew {
		t.Fatalf("PushDigest = %q, %v", outcome, err)
	}
	if gen := prod.DigestGeneration(); gen != 1 {
		t.Fatalf("DigestGeneration = %d", gen)
	}

	// The withdrawal race: the central location table forgets the replica
	// while the file is still on the producer's disk and in its LRC.
	if err := g.Catalog.RemoveReplica(pf.LFN, pf.PFN.String()); err != nil {
		t.Fatal(err)
	}
	if locs, _ := g.Catalog.Locations(pf.LFN); len(locs) != 0 {
		t.Fatalf("location table still has %v", locs)
	}

	// Tier three answers the peer's locate...
	pfns, source, err := cons.Locate(ctx, pf.LFN)
	if err != nil {
		t.Fatalf("Locate after location loss: %v", err)
	}
	if source != "rli" {
		t.Fatalf("Locate answered from %q, want rli", source)
	}
	if len(pfns) != 1 || pfns[0].Addr != prod.DataAddr() {
		t.Fatalf("Locate = %v", pfns)
	}

	// ...and the replication path uses the same fallback end to end.
	if err := cons.GetCtx(ctx, pf.LFN); err != nil {
		t.Fatalf("Get via RLI fallback: %v", err)
	}
	if !cons.HasFile(pf.LFN) {
		t.Fatal("file did not land via RLI fallback")
	}
	if got := metricValue(consReg.Text(), "gdmp_rls_rli_which_total"); got < 1 {
		t.Fatalf("gdmp_rls_rli_which_total = %v, want >= 1", got)
	}
}

// TestRLSFalsePositivesNeverWrongAnswer is the seeded FP property: for
// LFNs nobody holds, a digest false positive may cost an extra LRC point
// query but must never produce an answer — and every denied candidate is
// counted as a false positive exactly.
func TestRLSFalsePositivesNeverWrongAnswer(t *testing.T) {
	seed := rlsSeed(t)
	ctx := context.Background()
	g, err := testbed.NewGrid(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	// A deliberately sloppy digest (10% FP target) makes false positives
	// likely enough to exercise the deny path within a few hundred probes.
	prod, err := g.AddSite("cern.ch", testbed.SiteOptions{
		Metrics:      obs.NewRegistry(),
		DigestFPRate: 0.10,
	})
	if err != nil {
		t.Fatal(err)
	}
	consReg := obs.NewRegistry()
	cons, err := g.AddSite("fnal.gov", testbed.SiteOptions{Metrics: consReg})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(seed))
	held := make(map[string]bool)
	for i := 0; i < 64; i++ {
		rel := fmt.Sprintf("rls/fp%03d.db", i)
		pf := publishData(t, g, prod, rel, testbed.MakeData(100+rng.Intn(400), seed+int64(i)))
		held[pf.LFN] = true
	}
	if _, err := prod.PushDigest(ctx); err != nil {
		t.Fatal(err)
	}

	rli := g.CatalogSrv.RLI()
	candidates := 0
	for i := 0; i < 300; i++ {
		lfn := fmt.Sprintf("lfn://nowhere.ch/absent-%d", rng.Int63())
		if held[lfn] {
			continue
		}
		candidates += len(rli.MightHold(lfn))
		if _, _, err := cons.Locate(ctx, lfn); err == nil {
			t.Fatalf("seed=%d: Locate invented an answer for absent %s", seed, lfn)
		}
	}
	t.Logf("%d bloom false positives over 300 absent probes", candidates)

	// Every RLI candidate for an absent LFN was, by construction, a false
	// positive; each must have been denied by an LRC point query and
	// counted. (Locate consults the RLI once per miss, so the site-side
	// counter tracks the index-side candidate total exactly.)
	fp := metricValue(consReg.Text(), "gdmp_rls_rli_false_positives_total")
	if fp != float64(candidates) {
		t.Fatalf("seed=%d: false-positive counter = %v, want %d", seed, fp, candidates)
	}
}

// TestRLSDigestCrashRestartConverges: a site that crashes mid-push and
// restarts has its digest generation counter reset; the RLI's stale
// rejection hands back the newer indexed generation, and the site must
// converge (its fresh digest indexed) within one more push — not after
// waiting out the old entry's TTL.
func TestRLSDigestCrashRestartConverges(t *testing.T) {
	ctx := context.Background()
	g, err := testbed.NewGrid(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	prod, err := g.AddSite("cern.ch", testbed.SiteOptions{
		Durable: true,
		Metrics: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}

	// Generations 1 and 2 land before the crash.
	publishData(t, g, prod, "rls/a.db", testbed.MakeData(4_000, 10))
	if _, err := prod.PushDigest(ctx); err != nil {
		t.Fatal(err)
	}
	publishData(t, g, prod, "rls/b.db", testbed.MakeData(4_000, 11))
	if _, err := prod.PushDigest(ctx); err != nil {
		t.Fatal(err)
	}
	preGen := prod.DigestGeneration()
	if preGen != 2 {
		t.Fatalf("pre-crash generation = %d, want 2", preGen)
	}

	// SIGKILL-style crash and restart: the generation counter resets.
	prod, err = g.RestartSite("cern.ch")
	if err != nil {
		t.Fatal(err)
	}
	if prod.DigestGeneration() != 0 {
		t.Fatalf("restarted generation = %d, want 0", prod.DigestGeneration())
	}

	// First post-restart push is stale (gen 1 < indexed 2) and adopts the
	// indexed generation...
	outcome, err := prod.PushDigest(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if outcome != replica.PushStale {
		t.Fatalf("post-restart push = %q, want %q", outcome, replica.PushStale)
	}
	// ...so the very next push supersedes the pre-crash entry.
	outcome, err = prod.PushDigest(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if outcome != replica.PushRefresh {
		t.Fatalf("converging push = %q, want %q", outcome, replica.PushRefresh)
	}
	sites := g.CatalogSrv.RLI().Sites()
	if len(sites) != 1 || sites[0].Gen <= preGen {
		t.Fatalf("RLI after convergence = %+v, want gen > %d", sites, preGen)
	}
	if sites[0].Count != 2 {
		t.Fatalf("converged digest holds %d LFNs, want 2 (journal restore)", sites[0].Count)
	}
}

// TestRLSDigestTTLAgesOutDeadSite: a site that stops pushing ages out of
// the index, so peers stop burning point queries on a corpse.
func TestRLSDigestTTLAgesOutDeadSite(t *testing.T) {
	ctx := context.Background()
	g, err := testbed.NewGrid(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	prod, err := g.AddSite("cern.ch", testbed.SiteOptions{
		Metrics:   obs.NewRegistry(),
		DigestTTL: 80 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	pf := publishData(t, g, prod, "rls/mortal.db", testbed.MakeData(2_000, 20))
	if _, err := prod.PushDigest(ctx); err != nil {
		t.Fatal(err)
	}
	if got := g.CatalogSrv.RLI().MightHold(pf.LFN); len(got) != 1 {
		t.Fatalf("MightHold before TTL = %v", got)
	}
	waitUntil(t, 5*time.Second, "RLI entry to age out", func() bool {
		return len(g.CatalogSrv.RLI().Sites()) == 0
	})
	if got := g.CatalogSrv.RLI().MightHold(pf.LFN); len(got) != 0 {
		t.Fatalf("MightHold after TTL = %v", got)
	}
}

// TestRLSDigestLoopPushesPeriodically exercises the background pusher:
// with a short interval the site becomes RLI-routable on its own and
// refreshes after new publications without any manual push.
func TestRLSDigestLoopPushesPeriodically(t *testing.T) {
	g, err := testbed.NewGrid(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	prod, err := g.AddSite("cern.ch", testbed.SiteOptions{
		Metrics:        obs.NewRegistry(),
		DigestInterval: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitUntil(t, 5*time.Second, "first automatic digest push", func() bool {
		return len(g.CatalogSrv.RLI().Sites()) == 1
	})

	pf := publishData(t, g, prod, "rls/auto.db", testbed.MakeData(2_000, 30))
	waitUntil(t, 5*time.Second, "digest refresh to index the new LFN", func() bool {
		return len(g.CatalogSrv.RLI().MightHold(pf.LFN)) == 1
	})
}
